/**
 * @file
 * Priority event queue for the discrete-event simulator — the hot path
 * of every experiment.
 *
 * Events are (time, sequence, callback) triples; ties on time are
 * broken by insertion order so the simulation is fully deterministic.
 * Events can be cancelled via the handle returned at scheduling time;
 * cancellation is lazy (the entry is skipped when it surfaces at the
 * heap head), exactly as in the original queue.
 *
 * Implementation: a pooled callback arena plus a two-level calendar
 * priority structure.
 *
 *  - Callback slots are recycled through a free-list, so steady-state
 *    scheduling performs **zero allocations**: no `shared_ptr` control
 *    block per event, and no `std::function` at all — callbacks are
 *    type-erased into a small-buffer payload stored inline in the slot
 *    (`InlineCallback`); callables larger than the buffer fall back to
 *    one heap allocation.
 *  - Ordering entries are 24 bytes of plain data — (when, seq, slot,
 *    generation) — so compares and moves are local and never
 *    dereference the arena, where the legacy queue sifted 64-byte
 *    entries dragging a `std::function` and a `shared_ptr` along.
 *  - Entries live in one of three places: a small **near heap**
 *    (4-ary, key-inline) holding every pending event below the
 *    current horizon; a wheel of coarse **time buckets** (unsorted
 *    append-only vectors) partitioning the future beyond the horizon;
 *    and an **overflow** list beyond the wheel. When the near heap
 *    drains, the next non-empty bucket is promoted (swap + filter +
 *    heapify, O(bucket)); when the wheel is exhausted, it is rebased
 *    over the overflow with a width chosen from the pending span.
 *    A flat heap over a fleet-scale backlog (10^5..10^6 pre-scheduled
 *    arrivals) pays ~log2(n) cache-cold lines per pop; the near heap
 *    stays at bucket-occupancy size (~10^2..10^3 entries, L1/L2
 *    resident) regardless of total backlog, which is where the bulk
 *    of the measured speedup comes from.
 *  - Cancellation uses **generation counters**: a handle is
 *    (slot, generation) and is live only while the slot's generation
 *    matches. Cancelling bumps the generation and frees the slot in
 *    O(1); the ordering entry remains as a tombstone discarded when
 *    it surfaces at the near-heap head or at promotion time. Stale
 *    handles — including handles to events that already fired — are
 *    detected in O(1) with no shared ownership.
 *
 * Determinism: the global fire order is exactly ascending (when, seq),
 * byte-identical to the legacy queue. Buckets partition by time, equal
 * times always classify to the same level (strictly-below-horizon =>
 * near), and the near heap breaks ties by sequence number.
 *
 * The performance methodology and the measured speedup over the
 * previous `shared_ptr`-based queue (kept as
 * `sim/legacy_event_queue.hh`) are documented in DESIGN.md ("The
 * event arena"); `bench/bench_sim_throughput.cc` measures both.
 *
 * Lifetime contract: an EventHandle must not be used after its
 * EventQueue is destroyed. Every handle in this codebase lives inside
 * an object (instance, controller) destroyed before the Simulator.
 */

#ifndef SLINFER_SIM_EVENT_QUEUE_HH
#define SLINFER_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "obs/counters.hh"

namespace slinfer
{

/**
 * Type-erased nullary callable with inline small-buffer storage.
 *
 * Move-only. Callables whose size/alignment fit `N` bytes are stored
 * in place (the common case: lambdas capturing a few pointers, or a
 * `std::function` wrapper); larger ones are boxed on the heap.
 *
 * `InlineCallback` (N = 64) is the event arena's payload type; the
 * memory subsystem stores its per-op completion callbacks in the
 * 16-byte instantiation, sized for the controller's `[this, inst]`
 * lambdas, so a parked load/unload op carries its callback with no
 * allocation and still fits — together with the op's other captures —
 * inside the arena's 64-byte inline window when it is rescheduled.
 */
template <std::size_t N>
class BasicInlineCallback
{
  public:
    static constexpr std::size_t kInlineBytes = N;

    BasicInlineCallback() = default;
    /** Explicit "no callback" (call sites that used to take a null
     *  std::function). */
    BasicInlineCallback(std::nullptr_t) {}
    BasicInlineCallback(const BasicInlineCallback &) = delete;
    BasicInlineCallback &operator=(const BasicInlineCallback &) = delete;

    BasicInlineCallback(BasicInlineCallback &&other) noexcept
    {
        moveFrom(other);
    }

    BasicInlineCallback &
    operator=(BasicInlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    /** Construct directly from any callable (non-template overloads
     *  can then accept `BasicInlineCallback` by value while callers
     *  keep passing raw lambdas). */
    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, BasicInlineCallback>>>
    BasicInlineCallback(F &&f)
    {
        set(std::forward<F>(f));
    }

    ~BasicInlineCallback() { reset(); }

    /** Install a callable, destroying any previous one. */
    template <typename F>
    void
    set(F &&f)
    {
        using Fn = std::decay_t<F>;
        reset();
        if constexpr (fitsInline<Fn>()) {
            new (buf_) Fn(std::forward<F>(f));
            vtable_ = &kInlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(buf_) = new Fn(std::forward<F>(f));
            vtable_ = &kHeapOps<Fn>;
        }
    }

    void operator()() { vtable_->invoke(buf_); }

    /** Invoke and destroy in one indirect call, leaving this empty —
     *  the pop hot path's last touch of the payload. */
    void
    consume()
    {
        const Ops *v = vtable_;
        vtable_ = nullptr;
        v->run(buf_);
    }

    explicit operator bool() const { return vtable_ != nullptr; }

    void
    reset()
    {
        if (vtable_) {
            vtable_->destroy(buf_);
            vtable_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct dst's payload from src's and destroy src's. */
        void (*relocate)(void *src, void *dst);
        void (*destroy)(void *);
        /** Invoke, then destroy (consume()). */
        void (*run)(void *);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn> static const Ops kInlineOps;
    template <typename Fn> static const Ops kHeapOps;

    void
    moveFrom(BasicInlineCallback &other) noexcept
    {
        vtable_ = other.vtable_;
        if (vtable_)
            vtable_->relocate(other.buf_, buf_);
        other.vtable_ = nullptr;
    }

    const Ops *vtable_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

template <std::size_t N>
template <typename Fn>
const typename BasicInlineCallback<N>::Ops
    BasicInlineCallback<N>::kInlineOps = {
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *src, void *dst) {
            Fn *s = static_cast<Fn *>(src);
            new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
        [](void *p) {
            Fn *f = static_cast<Fn *>(p);
            (*f)();
            f->~Fn();
        },
};

template <std::size_t N>
template <typename Fn>
const typename BasicInlineCallback<N>::Ops
    BasicInlineCallback<N>::kHeapOps = {
        [](void *p) { (**static_cast<Fn **>(p))(); },
        [](void *src, void *dst) {
            *static_cast<Fn **>(dst) = *static_cast<Fn **>(src);
        },
        [](void *p) { delete *static_cast<Fn **>(p); },
        [](void *p) {
            Fn *f = *static_cast<Fn **>(p);
            (*f)();
            delete f;
        },
};

/** The event arena's payload type. Sized for the engine's largest
 *  real capture — the memory subsystem's `[this, &inst, footprint,
 *  done]` completion callbacks carry a 32 B inline done-callback plus
 *  three words (56 B) — which the legacy queue's 16 B std::function
 *  SBO spilled to the heap on every load/unload/resize event. */
using InlineCallback = BasicInlineCallback<64>;

class EventQueue;

/**
 * Opaque handle allowing a scheduled event to be cancelled.
 *
 * A handle is (queue, slot, generation); it is *pending* while the
 * slot's generation still matches, which ends the moment the event
 * fires or is cancelled. Copies share the same identity: cancelling
 * through one makes all of them non-pending. Default-constructed
 * handles are never pending and are safe to cancel.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Cancel the event if it has not fired yet. Safe to call twice. */
    void cancel();

    /** True if the handle refers to a still-pending event. */
    bool pending() const;

  private:
    friend class EventQueue;
    EventHandle(EventQueue *q, std::uint32_t slot, std::uint32_t gen)
        : queue_(q), slot_(slot), gen_(gen)
    {
    }

    EventQueue *queue_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
};

/**
 * Time-ordered queue of callbacks (see the file comment for the
 * arena design).
 */
class EventQueue
{
  public:
    /** Legacy alias; schedule() accepts any nullary callable. */
    using Callback = InlineCallback;

    /** Schedule `cb` at absolute time `when`. */
    template <typename F>
    EventHandle
    schedule(Seconds when, F &&cb)
    {
        std::uint32_t slot = allocSlot();
        cbs_[slot].set(std::forward<F>(cb));
        std::uint32_t gen = meta_[slot].gen;
        place(Entry{when, nextSeq_++, slot, gen});
        ++live_;
        return EventHandle(this, slot, gen);
    }

    /**
     * Reserve a contiguous band of `width` sequence numbers and return
     * its base. Later schedule() calls draw from *after* the band, so
     * entries placed into it via scheduleAtSeq() tie-break exactly as
     * if they had all been scheduled here — the streaming replay path
     * (stream/feed.hh) reserves one band where the materialized path
     * bulk-schedules its arrivals, then fills it lazily, keeping the
     * global (when, seq) fire order byte-identical.
     */
    std::uint64_t
    reserveSeqBand(std::uint64_t width)
    {
        std::uint64_t base = nextSeq_;
        nextSeq_ += width;
        return base;
    }

    /** Schedule `cb` at `when` with an explicit sequence number from a
     *  previously reserved band (never a fresh nextSeq_). The caller
     *  owns band discipline: seqs must be unique and, per equal
     *  timestamp, assigned in the intended fire order. */
    template <typename F>
    EventHandle
    scheduleAtSeq(Seconds when, std::uint64_t seq, F &&cb)
    {
        std::uint32_t slot = allocSlot();
        cbs_[slot].set(std::forward<F>(cb));
        std::uint32_t gen = meta_[slot].gen;
        place(Entry{when, seq, slot, gen});
        ++live_;
        return EventHandle(this, slot, gen);
    }

    /** True if no live events remain. O(1): tombstones are counted,
     *  not swept, so this never touches the heap or the arena. */
    bool empty() const { return live_ == 0; }

    /** Time of the earliest live event; panics when empty. */
    Seconds nextTime() const;

    /**
     * Pop and run the earliest live event, returning its time. The
     * slot is released *before* the callback runs, so the callback
     * observes its own handle as non-pending and may freely schedule
     * new events. Panics when empty.
     */
    Seconds popAndRun();

    /** Number of live (non-cancelled, non-fired) events — exact. */
    std::size_t size() const { return live_; }

    /** Pre-size the arena and far storage for `n` concurrent events
     *  (e.g. an experiment's bulk-scheduled arrival backlog). */
    void reserve(std::size_t n);

    /**
     * Attach a flight-recorder counter sink (nullptr detaches). The
     * disabled cost is one null test per hot-path site; counters are
     * write-only from the queue's perspective, so attaching one cannot
     * change event order.
     */
    void attachCounters(obs::Counters *c) { ctr_ = c; }

  private:
    friend class EventHandle;

    static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

    /** One pending-or-tombstoned heap element; plain data so sift
     *  operations never touch the slot arena. */
    struct Entry
    {
        Seconds when;
        std::uint64_t seq;
        std::uint32_t slot;
        /** Slot generation at schedule time; a mismatch at pop time
         *  marks the entry as a cancelled tombstone. */
        std::uint32_t gen;

        bool
        fires_before(const Entry &o) const
        {
            if (when != o.when)
                return when < o.when;
            return seq < o.seq;
        }
    };

    /**
     * Slot bookkeeping, split from the callback payload so that the
     * hot probes — generation checks from handles/tombstone sweeps and
     * free-list pushes/pops — walk a dense 8-byte-per-slot array that
     * stays cache-resident, while the 80-byte payloads are only
     * touched twice per event (install and move-out).
     */
    struct SlotMeta
    {
        /** Bumped every time the slot is freed (fire or cancel);
         *  handles and ordering entries carry the schedule-time
         *  value. */
        std::uint32_t gen = 0;
        /** Free-list link while the slot is on the free-list. */
        std::uint32_t nextFree = kNone;
    };

    /** Pop a slot off the free-list, growing the arena if dry.
     *  Header-inline: one of the two calls on every schedule. */
    std::uint32_t
    allocSlot()
    {
        std::uint32_t slot;
        if (freeHead_ != kNone) {
            slot = freeHead_;
            freeHead_ = meta_[slot].nextFree;
        } else {
            slot = static_cast<std::uint32_t>(meta_.size());
            meta_.emplace_back();
            cbs_.emplace_back();
        }
        return slot;
    }

    void freeSlot(std::uint32_t slot);

    /**
     * Bucket index for a time inside the wheel: a reciprocal-multiply
     * approximation of (when - base) / width, clamped into range,
     * then corrected by a one-ulp boundary guard enforcing the
     * ordering invariant that **a bucket's start must never exceed
     * the entry's time** — otherwise a smaller-time event in the
     * previous bucket could fire after it. One-too-low is benign
     * (promoted early, the near heap still orders it). Shared by
     * place() and rebase() so the invariant lives in one place.
     */
    std::size_t
    bucketIndexFor(Seconds when) const
    {
        std::size_t idx = static_cast<std::size_t>(
            (when - wheelBase_) * invBucketWidth_);
        if (idx >= kBuckets)
            idx = kBuckets - 1;
        while (idx > 0 &&
               wheelBase_ + static_cast<double>(idx) * bucketWidth_ >
                   when)
            --idx;
        return idx;
    }

    /**
     * Route a fresh entry to the near heap / a wheel bucket / the
     * overflow list. Level membership is decided by *exact*
     * comparisons against horizon_ and wheelEnd_; the bucket index
     * within the wheel comes from bucketIndexFor().
     */
    void
    place(const Entry &e)
    {
        if (e.when < horizon_) {
            heapPush(e);
            return;
        }
        if (e.when < wheelEnd_) {
            std::size_t idx = bucketIndexFor(e.when);
            // Never land at/after the horizon in an already-promoted
            // bucket, or the entry would be lost.
            if (idx < curBucket_)
                idx = curBucket_;
            if (buckets_[idx].empty())
                occupied_[idx / 64] |= 1ull << (idx % 64);
            buckets_[idx].push_back(e);
            ++wheelCount_;
            return;
        }
        if (overflow_.empty()) {
            overflowLo_ = overflowHi_ = e.when;
        } else {
            overflowLo_ = std::min(overflowLo_, e.when);
            overflowHi_ = std::max(overflowHi_, e.when);
        }
        overflow_.push_back(e);
    }

    void heapPush(const Entry &e);
    /** Remove the near-heap root (no slot bookkeeping). */
    void popRoot() const;
    void siftDown(std::size_t pos) const;
    /** Build the near heap in place (Floyd). */
    void heapify() const;
    /** Drop stale near-head entries; promote buckets / rebase the
     *  wheel until the near head is a live event or none remain.
     *  Returns false iff no live event exists. */
    bool ensureNearHead() const;
    /** Move the next non-empty bucket's live entries into the (empty)
     *  near heap. Precondition: wheelCount_ > 0. */
    void promoteNextBucket() const;
    /** Rebuild the wheel over the overflow list, starting a new epoch
     *  at the overflow's earliest event. */
    void rebase() const;

    void cancelSlot(std::uint32_t slot, std::uint32_t gen);
    bool
    slotPending(std::uint32_t slot, std::uint32_t gen) const
    {
        return slot < meta_.size() && meta_[slot].gen == gen;
    }
    bool
    stale(const Entry &e) const
    {
        return meta_[e.slot].gen != e.gen;
    }

    /** Wheel geometry: enough buckets that a fleet-scale backlog
     *  (10^5..10^6 events) still promotes in L1/L2-sized chunks. */
    static constexpr std::size_t kBuckets = 1024;

    std::vector<SlotMeta> meta_;
    /** Callback payloads, parallel to meta_. */
    std::vector<InlineCallback> cbs_;
    std::uint32_t freeHead_ = kNone;
    std::uint64_t nextSeq_ = 0;
    std::size_t live_ = 0;
    /** Cancelled entries still parked somewhere in the structure.
     *  When zero, heads are live by construction and the pop path
     *  skips the generation probe entirely. */
    mutable std::size_t tombstones_ = 0;

    /** All pending events with when < horizon_, heap-ordered. */
    mutable std::vector<Entry> near_;
    /** bucket i covers [wheelBase_ + i*w, wheelBase_ + (i+1)*w). */
    mutable std::vector<std::vector<Entry>> buckets_;
    /** One bit per bucket (1 = non-empty), so promotion finds the
     *  next occupied bucket with a find-first-set scan instead of
     *  probing up to kBuckets empty vectors when occupancy is
     *  sparse. */
    mutable std::vector<std::uint64_t> occupied_;
    mutable std::size_t curBucket_ = 0;
    mutable std::size_t wheelCount_ = 0; ///< entries across buckets_
    mutable Seconds wheelBase_ = 0.0;
    mutable Seconds bucketWidth_ = 1.0;
    mutable double invBucketWidth_ = 1.0;
    /** = wheelBase_ + curBucket_ * bucketWidth_; 0 before any rebase,
     *  so every initial schedule lands in the overflow list. */
    mutable Seconds horizon_ = 0.0;
    /** = wheelBase_ + kBuckets * bucketWidth_ — the exact wheel/
     *  overflow membership boundary; 0 before any rebase. */
    mutable Seconds wheelEnd_ = 0.0;
    /** Events at/after the wheel end, unsorted; lo/hi track the span
     *  incrementally so rebase() skips a scan. */
    mutable std::vector<Entry> overflow_;
    mutable Seconds overflowLo_ = 0.0;
    mutable Seconds overflowHi_ = 0.0;
    /** Optional counter sink; mutated through the pointer from const
     *  maintenance paths (promotion/rebase), which is well-defined. */
    obs::Counters *ctr_ = nullptr;
};

} // namespace slinfer

#endif // SLINFER_SIM_EVENT_QUEUE_HH
