#include "sim/event_queue.hh"

#include "common/log.hh"

namespace slinfer
{

void
EventHandle::cancel()
{
    if (alive_ && *alive_)
        *alive_ = false;
}

bool
EventHandle::pending() const
{
    return alive_ && *alive_;
}

EventHandle
EventQueue::schedule(Seconds when, Callback cb)
{
    auto alive = std::make_shared<bool>(true);
    heap_.push(Entry{when, nextSeq_++, std::move(cb), alive});
    ++live_;
    return EventHandle(alive);
}

void
EventQueue::dropDead() const
{
    while (!heap_.empty() && !*heap_.top().alive) {
        heap_.pop();
        --live_;
    }
}

bool
EventQueue::empty() const
{
    dropDead();
    return heap_.empty();
}

Seconds
EventQueue::nextTime() const
{
    dropDead();
    if (heap_.empty())
        panic("EventQueue::nextTime on empty queue");
    return heap_.top().when;
}

Seconds
EventQueue::popAndRun()
{
    dropDead();
    if (heap_.empty())
        panic("EventQueue::popAndRun on empty queue");
    // priority_queue::top returns const&, so copy the callback out before
    // popping. Entries are small; this is not on a critical path that
    // matters relative to the callbacks themselves.
    Entry e = heap_.top();
    heap_.pop();
    --live_;
    *e.alive = false;
    e.cb();
    return e.when;
}

} // namespace slinfer
