#include "sim/event_queue.hh"

#include <algorithm>

#include "common/log.hh"

namespace slinfer
{

void
EventHandle::cancel()
{
    if (queue_)
        queue_->cancelSlot(slot_, gen_);
}

bool
EventHandle::pending() const
{
    return queue_ && queue_->slotPending(slot_, gen_);
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    cbs_[slot].reset();
    SlotMeta &m = meta_[slot];
    ++m.gen;
    m.nextFree = freeHead_;
    freeHead_ = slot;
}

// The near heap is 4-ary: half the levels of a binary heap, and the
// four children of a node are contiguous, so one sift level costs
// roughly one cache line instead of two scattered ones. Determinism
// only requires that the root is the (when, seq) minimum, which any
// d-ary sift maintains.

void
EventQueue::heapPush(const Entry &e)
{
    std::size_t pos = near_.size();
    near_.push_back(e);
    while (pos > 0) {
        std::size_t parent = (pos - 1) / 4;
        if (!e.fires_before(near_[parent]))
            break;
        near_[pos] = near_[parent];
        pos = parent;
    }
    near_[pos] = e;
}

void
EventQueue::siftDown(std::size_t pos) const
{
    const std::size_t n = near_.size();
    Entry e = near_[pos];
    for (;;) {
        std::size_t first = 4 * pos + 1;
        if (first >= n)
            break;
        std::size_t last = first + 4 < n ? first + 4 : n;
        std::size_t best = first;
        for (std::size_t c = first + 1; c < last; ++c) {
            if (near_[c].fires_before(near_[best]))
                best = c;
        }
        if (!near_[best].fires_before(e))
            break;
        near_[pos] = near_[best];
        pos = best;
    }
    near_[pos] = e;
}

void
EventQueue::heapify() const
{
    if (near_.size() < 2)
        return;
    for (std::size_t i = (near_.size() - 2) / 4 + 1; i-- > 0;)
        siftDown(i);
}

void
EventQueue::popRoot() const
{
    near_[0] = near_.back();
    near_.pop_back();
    if (!near_.empty())
        siftDown(0);
}

void
EventQueue::promoteNextBucket() const
{
    // Find-first-set over the occupancy bitmap, starting at the
    // current bucket.
    std::size_t word = curBucket_ / 64;
    std::uint64_t bits =
        word < occupied_.size()
            ? occupied_[word] & (~0ull << (curBucket_ % 64))
            : 0;
    while (bits == 0) {
        if (++word >= occupied_.size())
            panic("EventQueue: wheel count out of sync");
        bits = occupied_[word];
    }
    curBucket_ = word * 64 +
                 static_cast<std::size_t>(__builtin_ctzll(bits));
    occupied_[word] &= ~(1ull << (curBucket_ % 64));
    obs::bump(ctr_, obs::kBucketPromotions);
    // Swap, filter, heapify: the drained near vector's capacity is
    // recycled into the bucket, and stale (cancelled) entries never
    // reach the heap at all.
    std::vector<Entry> &bucket = buckets_[curBucket_];
    wheelCount_ -= bucket.size();
    near_.swap(bucket);
    bucket.clear();
    if (tombstones_ > 0) {
        std::size_t before = near_.size();
        near_.erase(std::remove_if(
                        near_.begin(), near_.end(),
                        [this](const Entry &e) { return stale(e); }),
                    near_.end());
        tombstones_ -= before - near_.size();
    }
    ++curBucket_;
    horizon_ = wheelBase_ +
               static_cast<double>(curBucket_) * bucketWidth_;
    heapify();
}

void
EventQueue::rebase() const
{
    if (tombstones_ > 0) {
        std::size_t before = overflow_.size();
        overflow_.erase(std::remove_if(overflow_.begin(),
                                       overflow_.end(),
                                       [this](const Entry &e) {
                                           return stale(e);
                                       }),
                        overflow_.end());
        tombstones_ -= before - overflow_.size();
    }
    if (overflow_.empty())
        return;
    if (buckets_.empty()) {
        buckets_.resize(kBuckets);
        occupied_.assign(kBuckets / 64, 0);
    }
    // overflowLo_/Hi_ were tracked at push time and may include
    // since-cancelled entries; a slightly loose span only loosens
    // the bucket width, never ordering.
    wheelBase_ = overflowLo_;
    bucketWidth_ =
        overflowHi_ > overflowLo_
            ? (overflowHi_ - overflowLo_) /
                  static_cast<double>(kBuckets - 1)
            : 1.0;
    invBucketWidth_ = 1.0 / bucketWidth_;
    curBucket_ = 0;
    horizon_ = wheelBase_;
    wheelEnd_ = wheelBase_ +
                static_cast<double>(kBuckets) * bucketWidth_;
    for (const Entry &e : overflow_) {
        std::size_t idx = bucketIndexFor(e.when);
        if (buckets_[idx].empty())
            occupied_[idx / 64] |= 1ull << (idx % 64);
        buckets_[idx].push_back(e);
    }
    wheelCount_ += overflow_.size();
    obs::add(ctr_, obs::kEventsRebased, overflow_.size());
    overflow_.clear();
}

bool
EventQueue::ensureNearHead() const
{
    for (;;) {
        if (!near_.empty()) {
            if (tombstones_ == 0 || !stale(near_[0]))
                return true;
            popRoot();
            --tombstones_;
            continue;
        }
        if (wheelCount_ > 0) {
            promoteNextBucket();
            continue;
        }
        if (!overflow_.empty()) {
            rebase();
            continue;
        }
        return false;
    }
}

void
EventQueue::cancelSlot(std::uint32_t slot, std::uint32_t gen)
{
    if (!slotPending(slot, gen))
        return;
    // O(1): free the slot now; the ordering entry becomes a tombstone
    // discarded when it surfaces at the near-heap head, at bucket
    // promotion, or at wheel rebase (its generation no longer matches
    // the slot's).
    freeSlot(slot);
    --live_;
    ++tombstones_;
    obs::bump(ctr_, obs::kEventsCancelled);
}

Seconds
EventQueue::nextTime() const
{
    if (!ensureNearHead())
        panic("EventQueue::nextTime on empty queue");
    return near_[0].when;
}

Seconds
EventQueue::popAndRun()
{
    if (!ensureNearHead())
        panic("EventQueue::popAndRun on empty queue");
    std::uint32_t slot = near_[0].slot;
    Seconds when = near_[0].when;
    popRoot();
    // Move the callback out and release the slot *before* invoking:
    // the callback may schedule (growing the arena and invalidating
    // payload references) or cancel, and must see its own handle as
    // already non-pending — same semantics as the legacy queue.
    InlineCallback cb = std::move(cbs_[slot]);
    freeSlot(slot);
    --live_;
    obs::bump(ctr_, obs::kEventsFired);
    cb.consume();
    return when;
}

void
EventQueue::reserve(std::size_t n)
{
    meta_.reserve(n);
    cbs_.reserve(n);
    // Bulk-scheduled backlogs (experiment arrivals) land in the
    // overflow list first; the near heap never exceeds a bucket's
    // occupancy plus the below-horizon churn.
    overflow_.reserve(n);
}

} // namespace slinfer
