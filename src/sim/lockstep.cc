#include "sim/lockstep.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/log.hh"
#include "sim/simulator.hh"
#include "sweep/pool.hh"

namespace slinfer
{

namespace
{

constexpr Seconds kNever = std::numeric_limits<Seconds>::infinity();

/** The canonical boundary order: ascending time, lane order breaking
 *  ties. Intra-lane order is the staging index, preserved because a
 *  lane's buffer is consumed front to back. */
bool
stagedBefore(Seconds aTime, std::size_t aOrder, Seconds bTime,
             std::size_t bOrder)
{
    if (aTime != bTime)
        return aTime < bTime;
    return aOrder < bOrder;
}

} // namespace

std::vector<std::pair<std::size_t, std::size_t>>
lockstepMergeOrder(const std::vector<LaneBatchView> &views)
{
    struct Cursor
    {
        const LaneBatchView *view;
        std::size_t idx;
    };
    auto later = [](const Cursor &a, const Cursor &b) {
        return !stagedBefore(a.view->recs->at(a.idx).time, a.view->order,
                             b.view->recs->at(b.idx).time,
                             b.view->order);
    };
    std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)>
        heap(later);
    for (const LaneBatchView &v : views) {
        if (v.recs && !v.recs->empty())
            heap.push({&v, 0});
    }
    std::vector<std::pair<std::size_t, std::size_t>> out;
    while (!heap.empty()) {
        Cursor c = heap.top();
        heap.pop();
        out.emplace_back(c.view->order, c.idx);
        if (c.idx + 1 < c.view->recs->size())
            heap.push({c.view, c.idx + 1});
    }
    return out;
}

LockstepEngine::LockstepEngine(Simulator &sim, Seconds window,
                               int threads)
    : sim_(sim), window_(window), threads_(threads < 1 ? 1 : threads)
{
    if (!(window_ > 0))
        panic("LockstepEngine: window must be positive");
}

LockstepEngine::~LockstepEngine() = default;

void
LockstepEngine::registerLane(std::size_t order, LockstepClient *client)
{
    auto lane = std::make_unique<LockstepLane>();
    lane->client = client;
    lane->engine = this;
    lane->order = order;
    LockstepLane *ptr = lane.get();
    lanes_.push_back(std::move(lane));
    auto pos = std::lower_bound(
        order_.begin(), order_.end(), ptr,
        [](const LockstepLane *a, const LockstepLane *b) {
            return a->order < b->order;
        });
    if (pos != order_.end() && (*pos)->order == order)
        panic("LockstepEngine: duplicate lane order");
    order_.insert(pos, ptr);
    client->bindLane(ptr);
}

Seconds
LockstepEngine::gridCeil(Seconds t) const
{
    if (t <= 0)
        return 0.0;
    return std::ceil(t / window_) * window_;
}

Seconds
LockstepEngine::earliestWork() const
{
    Seconds t = sim_.nextEventTime();
    for (const LockstepLane *lane : order_) {
        if (lane->nextAt < t)
            t = lane->nextAt;
        // Buffers are time-nondecreasing (chains stage at their own
        // monotone clock; controller kicks stage at controlTime(),
        // which never precedes anything already staged), so front()
        // is each lane's minimum.
        if (!lane->recs.empty() && lane->recs.front().time < t)
            t = lane->recs.front().time;
    }
    return t;
}

void
LockstepEngine::runLane(LockstepLane &lane, Seconds upTo)
{
    lane.running = true;
    lane.client->runPending(upTo);
    lane.running = false;
}

void
LockstepEngine::nodePhase(Seconds upTo)
{
    active_.clear();
    for (LockstepLane *lane : order_) {
        if (lane->nextAt <= upTo)
            active_.push_back(lane);
    }
    if (active_.empty())
        return;
    ++windows_;
    if (threads_ <= 1 || active_.size() == 1) {
        // Inline in canonical order: the serial-oracle execution. Any
        // other order gives the same bytes — that is the point — but
        // this one is also what a debugger single-steps through.
        for (LockstepLane *lane : active_)
            runLane(*lane, upTo);
    } else {
        if (!pool_)
            pool_ = std::make_unique<sweep::TaskPool>(threads_);
        pool_->run(active_.size(), [this, upTo](std::size_t i) {
            runLane(*active_[i], upTo);
        });
    }
    std::uint64_t ran = 0;
    for (LockstepLane *lane : active_) {
        ran += lane->eventsRun;
        lane->eventsRun = 0;
    }
    sim_.addEventsRun(ran);
}

void
LockstepEngine::boundary(Seconds b, Seconds ctlAnchor)
{
    // Snapshot every lane's staged batch. Records staged *during* the
    // replay (controller kicks starting fresh iterations) land in the
    // now-empty live buffers and are picked up by the next boundary —
    // which the window loop runs immediately when they carry the
    // current boundary time.
    struct HeapEntry
    {
        Seconds time;
        LockstepLane *lane;
    };
    auto later = [](const HeapEntry &x, const HeapEntry &y) {
        return !stagedBefore(x.time, x.lane->order, y.time,
                             y.lane->order);
    };
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        decltype(later)>
        heap(later);
    for (LockstepLane *lane : order_) {
        lane->replay.clear();
        lane->replay.swap(lane->recs);
        lane->cursor = 0;
        if (!lane->replay.empty())
            heap.push({lane->replay.front().time, lane});
    }
    ctl_ = ctlAnchor;
    for (;;) {
        Seconds ts = heap.empty() ? kNever : heap.top().time;
        if (ts > b) {
            // Heap min beyond the boundary means *everything* staged
            // left is (it can only happen after an off-grid flush
            // whose controller kicks anchored to the next grid
            // point); it waits for that boundary.
            ts = kNever;
        }
        Seconds tg = sim_.nextEventTime();
        if (tg > b)
            tg = kNever; // beyond this boundary: stays queued
        if (ts == kNever && tg == kNever)
            break;
        if (ts <= tg) { // staged-before-global on time ties
            LockstepLane *lane = heap.top().lane;
            heap.pop();
            const StagedRec &rec = lane->replay[lane->cursor++];
            // Replay at the record's own timestamp so every sink and
            // self-rescheduling cadence sees exactly the time the
            // chain saw. The clock may dip below a previous
            // advance-target here; that is internal to the boundary
            // and invisible outside it (inject() flushes first).
            sim_.setNow(rec.time);
            lane->client->replayRecord(rec);
            ++merged_;
            if (lane->cursor < lane->replay.size())
                heap.push({lane->replay[lane->cursor].time, lane});
        } else {
            sim_.runNextEvent();
        }
    }
    // Unconsumed staged tails (> b) go back to the front of the live
    // buffer, ahead of anything replay-time kicks staged after them —
    // same times, earlier staging index, so canonical order holds.
    for (LockstepLane *lane : order_) {
        if (lane->cursor >= lane->replay.size())
            continue;
        lane->replay.erase(lane->replay.begin(),
                           lane->replay.begin() +
                               static_cast<std::ptrdiff_t>(lane->cursor));
        lane->replay.insert(lane->replay.end(), lane->recs.begin(),
                            lane->recs.end());
        lane->recs.swap(lane->replay);
    }
}

Seconds
LockstepEngine::runUntil(Seconds until)
{
    for (;;) {
        Seconds work = earliestWork();
        if (work == kNever)
            break;
        Seconds b = gridCeil(work);
        if (b > until)
            break;
        nodePhase(b);
        boundary(b, b);
    }
    // Partial tail cell: chains advance (staging only — their side
    // effects replay at the next boundary), global events wait for
    // theirs. This keeps stepped advances byte-identical to one-shot
    // runs: chains are autonomous within a window, and a global event
    // at time t is always processed at boundary gridCeil(t) no matter
    // how the caller slices the clock.
    nodePhase(until);
    if (sim_.now() < until)
        sim_.setNow(until);
    ctl_ = gridCeil(until);
    return sim_.now();
}

Seconds
LockstepEngine::run()
{
    for (;;) {
        Seconds work = earliestWork();
        if (work == kNever)
            break;
        Seconds b = gridCeil(work);
        nodePhase(b);
        boundary(b, b);
    }
    return sim_.now();
}

void
LockstepEngine::flushStaged()
{
    Seconds t = sim_.now();
    boundary(t, gridCeil(t));
    if (sim_.now() < t)
        sim_.setNow(t);
}

} // namespace slinfer
