/**
 * @file
 * The discrete-event simulator: a clock plus an event queue.
 *
 * All cluster components hold a reference to one Simulator, schedule
 * callbacks with relative delays, and read the current time via now().
 * schedule()/scheduleAt() forward the callable straight into the event
 * arena (sim/event_queue.hh), so a lambda capturing a few pointers is
 * stored inline with no allocation.
 */

#ifndef SLINFER_SIM_SIMULATOR_HH
#define SLINFER_SIM_SIMULATOR_HH

#include <limits>

#include "common/log.hh"
#include "obs/phase.hh"
#include "sim/event_queue.hh"

namespace slinfer
{

class LockstepEngine;

class Simulator
{
  public:
    /** Current simulated time. */
    Seconds now() const { return now_; }

    /** Schedule `cb` after `delay` seconds (>= 0). */
    template <typename F>
    EventHandle
    schedule(Seconds delay, F &&cb)
    {
        if (delay < 0)
            panic("Simulator::schedule with negative delay");
        return queue_.schedule(now_ + delay, std::forward<F>(cb));
    }

    /** Schedule `cb` at absolute time `when` (>= now). */
    template <typename F>
    EventHandle
    scheduleAt(Seconds when, F &&cb)
    {
        if (when < now_)
            panic("Simulator::scheduleAt in the past");
        return queue_.schedule(when, std::forward<F>(cb));
    }

    /** Reserve a band of sequence numbers for scheduleAtSeq (see
     *  EventQueue::reserveSeqBand — streaming arrival replay). */
    std::uint64_t
    reserveSeqBand(std::uint64_t width)
    {
        return queue_.reserveSeqBand(width);
    }

    /** Schedule `cb` at absolute time `when` (>= now) with an explicit
     *  sequence number from a reserved band. */
    template <typename F>
    EventHandle
    scheduleAtSeq(Seconds when, std::uint64_t seq, F &&cb)
    {
        if (when < now_)
            panic("Simulator::scheduleAtSeq in the past");
        return queue_.scheduleAtSeq(when, seq, std::forward<F>(cb));
    }

    /** Run until the queue drains. Returns the final time. In
     *  lockstep mode, the attached engine drives the loop instead. */
    Seconds run();

    /**
     * Run events with time <= `until`, then set the clock to `until`.
     * Events scheduled beyond `until` stay queued. In lockstep mode,
     * the attached engine drives the loop instead.
     */
    Seconds runUntil(Seconds until);

    /**
     * Attach the lockstep engine (sim/lockstep.hh): run()/runUntil()
     * delegate to its window loop, and the engine drives the global
     * queue itself through the plumbing below. Null detaches (the
     * default serial dispatch).
     */
    void setLockstep(LockstepEngine *engine) { lockstep_ = engine; }
    LockstepEngine *lockstep() const { return lockstep_; }

    // ---- Lockstep plumbing (LockstepEngine only) -------------------

    /** Time of the next queued event, or +inf when empty. */
    Seconds
    nextEventTime() const
    {
        return queue_.empty()
                   ? std::numeric_limits<Seconds>::infinity()
                   : queue_.nextTime();
    }

    /** Advance the clock to the next event and run it. */
    void
    runNextEvent()
    {
        now_ = queue_.nextTime();
        queue_.popAndRun();
        ++eventsRun_;
    }

    /** Pin the clock (boundary replay / window-end advancement). */
    void setNow(Seconds t) { now_ = t; }

    /** Fold a node phase's chain-event count into eventsRun(). */
    void addEventsRun(std::uint64_t n) { eventsRun_ += n; }

    /** True if no events remain. */
    bool idle() const { return queue_.empty(); }

    /** Number of events executed so far. */
    std::uint64_t eventsRun() const { return eventsRun_; }

    /** Pre-size the event arena for `n` concurrent events. */
    void reserveEvents(std::size_t n) { queue_.reserve(n); }

    /**
     * Attach flight-recorder sinks (either may be null): counters go
     * to the event queue's hot-path hooks, the profiler brackets the
     * dispatch loops. Neither feeds back into event order.
     */
    void
    attachObs(obs::Counters *counters, obs::PhaseProfiler *profiler)
    {
        queue_.attachCounters(counters);
        prof_ = profiler;
    }

  private:
    EventQueue queue_;
    Seconds now_ = 0.0;
    std::uint64_t eventsRun_ = 0;
    obs::PhaseProfiler *prof_ = nullptr;
    LockstepEngine *lockstep_ = nullptr;
};

} // namespace slinfer

#endif // SLINFER_SIM_SIMULATOR_HH
