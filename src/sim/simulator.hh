/**
 * @file
 * The discrete-event simulator: a clock plus an event queue.
 *
 * All cluster components hold a reference to one Simulator, schedule
 * callbacks with relative delays, and read the current time via now().
 */

#ifndef SLINFER_SIM_SIMULATOR_HH
#define SLINFER_SIM_SIMULATOR_HH

#include "sim/event_queue.hh"

namespace slinfer
{

class Simulator
{
  public:
    /** Current simulated time. */
    Seconds now() const { return now_; }

    /** Schedule `cb` after `delay` seconds (>= 0). */
    EventHandle schedule(Seconds delay, EventQueue::Callback cb);

    /** Schedule `cb` at absolute time `when` (>= now). */
    EventHandle scheduleAt(Seconds when, EventQueue::Callback cb);

    /** Run until the queue drains. Returns the final time. */
    Seconds run();

    /**
     * Run events with time <= `until`, then set the clock to `until`.
     * Events scheduled beyond `until` stay queued.
     */
    Seconds runUntil(Seconds until);

    /** True if no events remain. */
    bool idle() const { return queue_.empty(); }

    /** Number of events executed so far. */
    std::uint64_t eventsRun() const { return eventsRun_; }

  private:
    EventQueue queue_;
    Seconds now_ = 0.0;
    std::uint64_t eventsRun_ = 0;
};

} // namespace slinfer

#endif // SLINFER_SIM_SIMULATOR_HH
