/**
 * @file
 * The discrete-event simulator: a clock plus an event queue.
 *
 * All cluster components hold a reference to one Simulator, schedule
 * callbacks with relative delays, and read the current time via now().
 * schedule()/scheduleAt() forward the callable straight into the event
 * arena (sim/event_queue.hh), so a lambda capturing a few pointers is
 * stored inline with no allocation.
 */

#ifndef SLINFER_SIM_SIMULATOR_HH
#define SLINFER_SIM_SIMULATOR_HH

#include "common/log.hh"
#include "obs/phase.hh"
#include "sim/event_queue.hh"

namespace slinfer
{

class Simulator
{
  public:
    /** Current simulated time. */
    Seconds now() const { return now_; }

    /** Schedule `cb` after `delay` seconds (>= 0). */
    template <typename F>
    EventHandle
    schedule(Seconds delay, F &&cb)
    {
        if (delay < 0)
            panic("Simulator::schedule with negative delay");
        return queue_.schedule(now_ + delay, std::forward<F>(cb));
    }

    /** Schedule `cb` at absolute time `when` (>= now). */
    template <typename F>
    EventHandle
    scheduleAt(Seconds when, F &&cb)
    {
        if (when < now_)
            panic("Simulator::scheduleAt in the past");
        return queue_.schedule(when, std::forward<F>(cb));
    }

    /** Run until the queue drains. Returns the final time. */
    Seconds run();

    /**
     * Run events with time <= `until`, then set the clock to `until`.
     * Events scheduled beyond `until` stay queued.
     */
    Seconds runUntil(Seconds until);

    /** True if no events remain. */
    bool idle() const { return queue_.empty(); }

    /** Number of events executed so far. */
    std::uint64_t eventsRun() const { return eventsRun_; }

    /** Pre-size the event arena for `n` concurrent events. */
    void reserveEvents(std::size_t n) { queue_.reserve(n); }

    /**
     * Attach flight-recorder sinks (either may be null): counters go
     * to the event queue's hot-path hooks, the profiler brackets the
     * dispatch loops. Neither feeds back into event order.
     */
    void
    attachObs(obs::Counters *counters, obs::PhaseProfiler *profiler)
    {
        queue_.attachCounters(counters);
        prof_ = profiler;
    }

  private:
    EventQueue queue_;
    Seconds now_ = 0.0;
    std::uint64_t eventsRun_ = 0;
    obs::PhaseProfiler *prof_ = nullptr;
};

} // namespace slinfer

#endif // SLINFER_SIM_SIMULATOR_HH
