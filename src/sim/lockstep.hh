/**
 * @file
 * Time-windowed lockstep parallel execution (δ-quantized control).
 *
 * The serving simulation has a natural two-phase structure: between
 * controller decisions, each partition's token chain (prefill/decode
 * iterations) only touches partition-local state — the instance, its
 * KV cache, the requests it owns — while everything cross-partition
 * (admission, placement, eviction, memory ops, interventions) flows
 * through the controller and the global event queue. The lockstep
 * engine exploits that: simulated time is cut into δ-spaced windows
 * anchored at 0 (`ExperimentConfig::simWindow`, default 50 ms), the
 * **node phase** advances every busy partition's chain to the window
 * end in parallel on a persistent work-stealing pool
 * (sweep/pool.hh), and the **controller phase** then runs serially at
 * the window boundary: each chain's side effects — stats, busy-second
 * aggregates, trace spans, anatomy hooks, completion/shortage
 * notifications — were *staged* into per-lane buffers during the node
 * phase and are replayed here, merged with the global event queue in
 * canonical (time, lane order, staging index) order.
 *
 * Semantics: lockstep mode models a control plane that acts at
 * δ-spaced decision points instead of instantaneously. It is opt-in
 * (`--parallel-sim`); the default engine is untouched and remains the
 * repo's serial reference semantics. Within lockstep mode the
 * determinism contract is **thread-count invariance**: the node phase
 * gives every lane the same inputs and the same private RNG stream
 * regardless of which worker runs it, and the boundary replay order
 * is canonical, so `--parallel-sim=1` (inline, no threads) and
 * `--parallel-sim=N` produce byte-identical reports, traces,
 * counters and attribution blocks. tests/test_parallel_sim.cc is the
 * differential layer that proves it; the merge-order property test
 * lives in tests/test_properties.cc via lockstepMergeOrder().
 *
 * Why not byte-equality with the *instantaneous* serial engine: that
 * engine has zero lookahead — a completion on node A at time t can
 * cause a prefill on node B at the same t. Any window that lets node
 * B run past t without knowing about it diverges, so exact
 * equivalence would force per-event windows (no parallelism) or
 * optimistic rollback. The δ-grid is the standard conservative
 * compromise: all cross-partition effects take hold at the next
 * boundary, uniformly and reproducibly.
 */

#ifndef SLINFER_SIM_LOCKSTEP_HH
#define SLINFER_SIM_LOCKSTEP_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace slinfer
{

class Simulator;
struct Request;
struct Instance;

namespace sweep
{
class TaskPool;
}

class LockstepEngine;
struct LockstepLane;

/**
 * One side effect a token chain staged during a node phase, replayed
 * verbatim at the window boundary. A flat tagged struct (not a
 * variant) so per-lane buffers are trivially relocatable and reusable
 * with zero allocation at steady state. `req`/`inst` stay valid
 * across the window: requests live in the Session's reserved block
 * and instances in the controller's stable pool, and neither is
 * destroyed mid-run.
 */
struct StagedRec
{
    enum class Kind : std::uint8_t
    {
        TraceSpan,          ///< exec span: name/dur/argName/arg
        AnatPrefillStart,   ///< anatomy: prefill began (req)
        AnatPrefillEnd,     ///< anatomy: prefill ended (req)
        AnatDecodeIterStart,///< anatomy: decode iter began (req)
        AnatDecodeIterEnd,  ///< anatomy: decode iter ended (req, flag)
        DecodeIterStats,    ///< ClusterStats::onDecodeIteration
        BusySeconds,        ///< ClusterIndex::addBusySeconds
        FirstToken,         ///< Callbacks::onFirstToken (req, inst)
        RequestDone,        ///< Callbacks::onRequestDone (req, inst)
        KvShortage,         ///< Callbacks::onKvShortage (inst)
        AfterPrefill,       ///< PD handoff: Callbacks::routeAfterPrefill
    };

    Kind kind = Kind::TraceSpan;
    /** Stalled flag for AnatDecodeIterEnd. */
    bool flag = false;
    /** HwKind, stored as int to keep this header hw-agnostic. */
    int hw = 0;
    /** Batch size (DecodeIterStats) / trace counter. */
    int count = 0;
    /** Tokens emitted (DecodeIterStats). */
    Tokens tokens = 0;
    /** Chain-local sim time of the original call; the merge key. */
    Seconds time = 0.0;
    /** Span / busy duration. */
    Seconds dur = 0.0;
    /** Trace span argument value. */
    double arg = 0.0;
    /** Trace span name / arg name (string literals only). */
    const char *name = nullptr;
    const char *argName = nullptr;
    Request *req = nullptr;
    Instance *inst = nullptr;
};

/**
 * The engine side of a partition's token chain. The chain's scheduler
 * (core/token_scheduler.hh) implements this; keeping it an abstract
 * interface keeps src/sim free of core-layer includes.
 */
class LockstepClient
{
  public:
    virtual ~LockstepClient() = default;
    /** The engine registered this client; remember the lane. */
    virtual void bindLane(LockstepLane *lane) = 0;
    /** Node phase: run every pending chain event with time <= upTo. */
    virtual void runPending(Seconds upTo) = 0;
    /** Controller phase: apply one staged record. The global clock is
     *  already set to rec.time. */
    virtual void replayRecord(const StagedRec &rec) = 0;
};

/**
 * Per-partition chain state owned by the engine. During a node phase
 * exactly one worker touches a given lane; the pool's join barrier
 * orders those writes before the boundary merge reads them.
 */
struct LockstepLane
{
    LockstepClient *client = nullptr;
    LockstepEngine *engine = nullptr;
    /** Canonical merge rank (== Partition::viewPos). */
    std::size_t order = 0;
    /** Time of the chain's single pending event (a partition runs at
     *  most one iteration at a time), or infinity when idle. */
    Seconds nextAt = std::numeric_limits<Seconds>::infinity();
    /** The chain's private clock during a node phase. */
    Seconds localNow = 0.0;
    /** True while runPending is executing (chain context); false in
     *  controller context, where kicks anchor to controlTime(). */
    bool running = false;
    /** Chain events run this window (merged into Simulator's count). */
    std::uint64_t eventsRun = 0;
    /** Staged side effects, time-nondecreasing by construction. */
    std::vector<StagedRec> recs;
    /** Snapshot being replayed at the current boundary (recycled so
     *  steady-state windows allocate nothing). */
    std::vector<StagedRec> replay;
    std::size_t cursor = 0;

    void
    stage(const StagedRec &rec)
    {
        recs.push_back(rec);
    }
};

/** One lane's staged batch paired with its canonical rank — the input
 *  shape of lockstepMergeOrder (exposed for the property test). */
struct LaneBatchView
{
    std::size_t order = 0;
    const std::vector<StagedRec> *recs = nullptr;
};

/**
 * Canonical boundary replay order over per-lane staged batches:
 * ascending (time, lane order, intra-lane index). This is exactly the
 * comparison the engine's boundary merge uses, factored out pure so
 * tests/test_properties.cc can prove that any permutation of worker
 * completion orders reconstructs the identical sequence. Returns
 * (lane order, index-within-that-lane) pairs.
 */
std::vector<std::pair<std::size_t, std::size_t>>
lockstepMergeOrder(const std::vector<LaneBatchView> &views);

class LockstepEngine
{
  public:
    /**
     * `window` is the control-plane period δ (> 0); `threads` is the
     * node-phase worker count (1 = inline, no pool — the serial
     * oracle the differential tests compare against).
     */
    LockstepEngine(Simulator &sim, Seconds window, int threads);
    ~LockstepEngine();

    LockstepEngine(const LockstepEngine &) = delete;
    LockstepEngine &operator=(const LockstepEngine &) = delete;

    /** Create the lane for a partition chain and bind it to `client`.
     *  `order` (the partition's viewPos) must be unique. */
    void registerLane(std::size_t order, LockstepClient *client);

    /** Lockstep counterpart of Simulator::runUntil: run whole windows
     *  whose boundary is <= `until`, then advance chains (staging
     *  only) through the partial tail cell and pin the clock. */
    Seconds runUntil(Seconds until);

    /** Lockstep counterpart of Simulator::run: loop windows until the
     *  queue is empty, every chain is idle and nothing is staged. */
    Seconds run();

    /**
     * Replay everything staged at times <= the current clock right
     * now, off-grid. Session::inject calls this before applying an
     * intervention so the controller (and the trace, which must stay
     * time-monotone) sees a fully synchronized state at the injection
     * point. A run without injections never replays off-grid.
     */
    void flushStaged();

    /** The grid boundary controller-context work anchors to: kicks
     *  from boundary replay or an off-grid inject() start chains at
     *  this time, keeping every staged timestamp >= all replayed
     *  ones. */
    Seconds controlTime() const { return ctl_; }

    Seconds window() const { return window_; }
    int threads() const { return threads_; }

    /** Node-phase windows executed (at least one chain ran). */
    std::uint64_t windowsRun() const { return windows_; }
    /** Staged records replayed at boundaries. */
    std::uint64_t recordsMerged() const { return merged_; }

  private:
    /** Smallest grid point >= t (the grid is {k·δ, k >= 0}). */
    Seconds gridCeil(Seconds t) const;
    /** Earliest pending work: chain events, staged records, or the
     *  global queue. Infinity when fully drained. */
    Seconds earliestWork() const;
    /** Advance every chain with work to `upTo` (parallel fan-out). */
    void nodePhase(Seconds upTo);
    /** Serial controller phase: replay staged records merged with
     *  global events up to `b`, anchoring new work at `ctlAnchor`. */
    void boundary(Seconds b, Seconds ctlAnchor);
    void runLane(LockstepLane &lane, Seconds upTo);

    Simulator &sim_;
    Seconds window_;
    int threads_;
    Seconds ctl_ = 0.0;
    std::vector<std::unique_ptr<LockstepLane>> lanes_;
    /** Lanes sorted by `order` — the canonical merge scan order. */
    std::vector<LockstepLane *> order_;
    /** Scratch: lanes active in the current node phase. */
    std::vector<LockstepLane *> active_;
    /** Persistent workers, created at the first parallel window. */
    std::unique_ptr<sweep::TaskPool> pool_;
    std::uint64_t windows_ = 0;
    std::uint64_t merged_ = 0;
};

} // namespace slinfer

#endif // SLINFER_SIM_LOCKSTEP_HH
