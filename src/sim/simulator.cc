#include "sim/simulator.hh"

namespace slinfer
{

Seconds
Simulator::run()
{
    obs::ScopedPhase phase(prof_, obs::kPhaseEventDispatch);
    while (!queue_.empty()) {
        // Advance the clock before running the callback so that now()
        // observed inside the callback equals the event's own time.
        now_ = queue_.nextTime();
        queue_.popAndRun();
        ++eventsRun_;
    }
    return now_;
}

Seconds
Simulator::runUntil(Seconds until)
{
    obs::ScopedPhase phase(prof_, obs::kPhaseEventDispatch);
    while (!queue_.empty() && queue_.nextTime() <= until) {
        now_ = queue_.nextTime();
        queue_.popAndRun();
        ++eventsRun_;
    }
    now_ = until > now_ ? until : now_;
    return now_;
}

} // namespace slinfer
