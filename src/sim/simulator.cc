#include "sim/simulator.hh"

#include "sim/lockstep.hh"

namespace slinfer
{

Seconds
Simulator::run()
{
    if (lockstep_)
        return lockstep_->run();
    obs::ScopedPhase phase(prof_, obs::kPhaseEventDispatch);
    while (!queue_.empty()) {
        // Advance the clock before running the callback so that now()
        // observed inside the callback equals the event's own time.
        now_ = queue_.nextTime();
        queue_.popAndRun();
        ++eventsRun_;
    }
    return now_;
}

Seconds
Simulator::runUntil(Seconds until)
{
    if (lockstep_)
        return lockstep_->runUntil(until);
    obs::ScopedPhase phase(prof_, obs::kPhaseEventDispatch);
    while (!queue_.empty() && queue_.nextTime() <= until) {
        now_ = queue_.nextTime();
        queue_.popAndRun();
        ++eventsRun_;
    }
    now_ = until > now_ ? until : now_;
    return now_;
}

} // namespace slinfer
