#include "sim/simulator.hh"

#include "common/log.hh"

namespace slinfer
{

EventHandle
Simulator::schedule(Seconds delay, EventQueue::Callback cb)
{
    if (delay < 0)
        panic("Simulator::schedule with negative delay");
    return queue_.schedule(now_ + delay, std::move(cb));
}

EventHandle
Simulator::scheduleAt(Seconds when, EventQueue::Callback cb)
{
    if (when < now_)
        panic("Simulator::scheduleAt in the past");
    return queue_.schedule(when, std::move(cb));
}

Seconds
Simulator::run()
{
    while (!queue_.empty()) {
        // Advance the clock before running the callback so that now()
        // observed inside the callback equals the event's own time.
        now_ = queue_.nextTime();
        queue_.popAndRun();
        ++eventsRun_;
    }
    return now_;
}

Seconds
Simulator::runUntil(Seconds until)
{
    while (!queue_.empty() && queue_.nextTime() <= until) {
        now_ = queue_.nextTime();
        queue_.popAndRun();
        ++eventsRun_;
    }
    now_ = until > now_ ? until : now_;
    return now_;
}

} // namespace slinfer
