/**
 * @file
 * The pre-arena event queue, preserved verbatim (renamed) for two
 * purposes only:
 *
 *  1. `bench/bench_sim_throughput.cc` measures the production
 *     `EventQueue` against it, so the "events/sec speedup" line in
 *     BENCH_sim_throughput.json stays an apples-to-apples number on
 *     any host rather than a one-off claim.
 *  2. `tests/test_sim.cc` uses it as the semantic oracle in the
 *     fuzz-style schedule/cancel interleaving test: both queues must
 *     fire the same callbacks in the same order for any program.
 *
 * Do not use it in new code — it pays a `shared_ptr<bool>` control
 * block per scheduled event and a `std::function` per callback, which
 * is exactly the churn the arena-based `sim/event_queue.hh` removes
 * (see DESIGN.md, "The event arena").
 */

#ifndef SLINFER_SIM_LEGACY_EVENT_QUEUE_HH
#define SLINFER_SIM_LEGACY_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace slinfer
{

/** Opaque handle allowing a scheduled legacy event to be cancelled. */
class LegacyEventHandle
{
  public:
    LegacyEventHandle() = default;

    void
    cancel()
    {
        if (alive_ && *alive_)
            *alive_ = false;
    }

    bool
    pending() const
    {
        return alive_ && *alive_;
    }

  private:
    friend class LegacyEventQueue;
    explicit LegacyEventHandle(std::shared_ptr<bool> alive)
        : alive_(std::move(alive))
    {
    }

    std::shared_ptr<bool> alive_;
};

/**
 * Time-ordered queue of callbacks: heap of
 * (time, seq, shared_ptr-guarded std::function) with lazy
 * cancellation sweeping at the heap head.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    LegacyEventHandle
    schedule(Seconds when, Callback cb)
    {
        auto alive = std::make_shared<bool>(true);
        heap_.push(Entry{when, nextSeq_++, std::move(cb), alive});
        ++live_;
        return LegacyEventHandle(alive);
    }

    bool
    empty() const
    {
        dropDead();
        return heap_.empty();
    }

    Seconds
    nextTime() const
    {
        dropDead();
        if (heap_.empty())
            panic("LegacyEventQueue::nextTime on empty queue");
        return heap_.top().when;
    }

    Seconds
    popAndRun()
    {
        dropDead();
        if (heap_.empty())
            panic("LegacyEventQueue::popAndRun on empty queue");
        Entry e = heap_.top();
        heap_.pop();
        --live_;
        *e.alive = false;
        e.cb();
        return e.when;
    }

    /** Upper bound on the live events (cancelled entries counted
     *  until lazily swept at the heap head). */
    std::size_t size() const { return live_; }

  private:
    struct Entry
    {
        Seconds when;
        std::uint64_t seq;
        Callback cb;
        std::shared_ptr<bool> alive;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void
    dropDead() const
    {
        while (!heap_.empty() && !*heap_.top().alive) {
            heap_.pop();
            --live_;
        }
    }

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
    mutable std::size_t live_ = 0;
};

} // namespace slinfer

#endif // SLINFER_SIM_LEGACY_EVENT_QUEUE_HH
