/**
 * @file
 * Incremental request sources for streaming replay.
 *
 * A RequestSource yields trace records one at a time in nondecreasing
 * time order. The Session consumes it either fully up front (the
 * classic materialized path, which stays the byte-identity oracle) or
 * through a StreamingArrivalFeed (stream/feed.hh) that keeps only a
 * bounded lookahead window of future arrivals alive — the whole point
 * of the subsystem: peak memory independent of trace length.
 *
 * Two implementations:
 *  - VectorSource wraps an in-memory AzureTrace (any ArrivalProcess
 *    generator); it owns the vector, so memory is bounded by the trace
 *    itself — 16 bytes per arrival — not by materialized Requests.
 *  - StrcSource pulls from an on-disk `.strc` compressed trace
 *    (stream/codec.hh), decoding one chunk at a time; this is the
 *    fully bounded path for multi-million-request traces.
 */

#ifndef SLINFER_STREAM_SOURCE_HH
#define SLINFER_STREAM_SOURCE_HH

#include <memory>
#include <string>

#include "stream/codec.hh"
#include "workload/azure_trace.hh"

namespace slinfer
{
namespace stream
{

/** Streaming-replay knobs on the experiment config. */
struct StreamConfig
{
    /** Pull arrivals incrementally instead of materializing the whole
     *  request vector up front. Reports are byte-identical to the
     *  materialized run (the fuzz matrix in tests/test_stream.cc). */
    bool enabled = false;

    /** Maximum arrivals scheduled-but-unfired at any instant; bounds
     *  the live Request pool together with the in-flight set. */
    std::uint32_t lookahead = 4096;

    /** Replay from this `.strc` file instead of generating a trace
     *  ("" = generate from cfg.arrivals / cfg.trace as usual). */
    std::string tracePath;
};

/**
 * One-pass cursor over a trace. Implementations guarantee records come
 * out in nondecreasing time order (the feed checks fatally).
 */
class RequestSource
{
  public:
    virtual ~RequestSource() = default;

    /** Pull the next record; false at end-of-trace. */
    virtual bool next(TraceRecord &rec) = 0;

    /** Metrics window, seconds (the trace's stamped duration). */
    virtual Seconds duration() const = 0;

    /** True when records carry token lengths (inputLen/targetOutput);
     *  false means the session samples lengths from its dataset. */
    virtual bool hasLengths() const = 0;

    /** Total records when known up front, 0 when unknown. Used only to
     *  pre-size buffers — never for correctness (unknown-size sources
     *  degrade to chunked growth). */
    virtual std::uint64_t sizeHint() const = 0;
};

using RequestSourcePtr = std::unique_ptr<RequestSource>;

/** Wrap a generated in-memory trace (takes ownership). */
RequestSourcePtr makeVectorSource(AzureTrace trace);

/** Open a `.strc` trace file. Null + `*err` on failure; a torn file
 *  opens fine with its salvageable prefix (StrcReader recovery). */
RequestSourcePtr makeStrcSource(const std::string &path,
                                std::string *err);

} // namespace stream
} // namespace slinfer

#endif // SLINFER_STREAM_SOURCE_HH
