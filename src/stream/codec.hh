/**
 * @file
 * The `.strc` compressed trace format and its building blocks.
 *
 * A `.strc` file holds one arrival trace — (time, model) pairs, with
 * optional per-request token lengths — as a sequence of independently
 * decodable chunks plus a seekable chunk index:
 *
 *   header | chunk* | index | footer
 *
 * Each chunk encodes up to `chunkCap` records *columnar*: all arrival
 * timestamps, then all model ids, then (when present) all length
 * pairs. Timestamps are XOR-deltas of the raw IEEE-754 bit patterns —
 * lossless by construction, and consecutive arrivals share exponent
 * and high-mantissa bytes so most deltas have 3-5 significant bytes.
 * Every column is then squeezed through a small adaptive binary
 * range coder with per-column context models (the Moruga/lpaq idiom:
 * bit-tree byte models updated on the fly; see DESIGN.md, "The .strc
 * codec"). Models reset per chunk, which is what makes chunks
 * independently decodable — the price of seekability.
 *
 * Integrity: every chunk carries a CRC-32 of its coded payload, and
 * the index carries its own. A torn or corrupt file (killed mid-write,
 * truncated copy) degrades, never traps: the reader falls back to a
 * sequential scan and recovers every complete, checksummed chunk
 * before the damage (StrcReader::recovered()).
 *
 * StrzWriter/strzReadAll are the general-purpose byte-stream variant
 * of the same chunk framing (order-1 context model over raw bytes),
 * used by the sweep result store for compressed JSONL (`.strz`).
 */

#ifndef SLINFER_STREAM_CODEC_HH
#define SLINFER_STREAM_CODEC_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace slinfer
{
namespace stream
{

// --------------------------------------------------------------------
// Primitives
// --------------------------------------------------------------------

/** CRC-32 (IEEE 802.3, reflected) of `n` bytes, chainable via `seed`. */
std::uint32_t crc32(const void *data, std::size_t n,
                    std::uint32_t seed = 0);

/** LEB128 append. */
void putVarint(std::string &out, std::uint64_t v);

/** LEB128 read; false on truncation/overlong input. `p` advances. */
bool getVarint(const std::uint8_t *&p, const std::uint8_t *end,
               std::uint64_t &v);

/**
 * One adaptive binary probability (12-bit, lpaq-style shift update).
 * Starts at 1/2; each observed bit nudges it 1/32 of the way toward
 * that bit's certainty.
 */
struct BitModel
{
    std::uint16_t p = 2048; ///< P(bit = 1) in [1, 4095] / 4096

    void
    update(int bit)
    {
        if (bit)
            p += (4096 - p) >> 5;
        else
            p -= p >> 5;
    }
};

/** Carryless binary range encoder over a growing byte string. */
class RangeEncoder
{
  public:
    explicit RangeEncoder(std::string &out) : out_(out) {}

    void
    encode(BitModel &m, int bit)
    {
        std::uint32_t mid =
            x1_ + ((x2_ - x1_) >> 12) * m.p;
        if (bit)
            x2_ = mid;
        else
            x1_ = mid + 1;
        m.update(bit);
        while (((x1_ ^ x2_) & 0xFF000000u) == 0) {
            out_.push_back(static_cast<char>(x2_ >> 24));
            x1_ <<= 8;
            x2_ = (x2_ << 8) | 255u;
        }
    }

    /** Flush the final state; the encoder is dead afterwards. */
    void
    finish()
    {
        for (int i = 0; i < 4; ++i) {
            out_.push_back(static_cast<char>(x1_ >> 24));
            x1_ <<= 8;
        }
    }

  private:
    std::string &out_;
    std::uint32_t x1_ = 0;
    std::uint32_t x2_ = 0xFFFFFFFFu;
};

/** Mirror of RangeEncoder over a byte span. Reading past the payload
 *  yields zero bytes — the symbol counts stored in the chunk header
 *  bound every decode loop, so this never misparses valid input. */
class RangeDecoder
{
  public:
    RangeDecoder(const std::uint8_t *data, std::size_t n)
        : p_(data), end_(data + n)
    {
        for (int i = 0; i < 4; ++i)
            x_ = (x_ << 8) | nextByte();
    }

    int
    decode(BitModel &m)
    {
        std::uint32_t mid =
            x1_ + ((x2_ - x1_) >> 12) * m.p;
        int bit = x_ <= mid;
        if (bit)
            x2_ = mid;
        else
            x1_ = mid + 1;
        m.update(bit);
        while (((x1_ ^ x2_) & 0xFF000000u) == 0) {
            x1_ <<= 8;
            x2_ = (x2_ << 8) | 255u;
            x_ = (x_ << 8) | nextByte();
        }
        return bit;
    }

  private:
    std::uint32_t
    nextByte()
    {
        return p_ < end_ ? *p_++ : 0u;
    }

    const std::uint8_t *p_;
    const std::uint8_t *end_;
    std::uint32_t x1_ = 0;
    std::uint32_t x2_ = 0xFFFFFFFFu;
    std::uint32_t x_ = 0;
};

/** Bit-tree byte model: 255 adaptive bits keyed by the MSB-first
 *  prefix, i.e. an order-0 adaptive byte distribution. */
struct ByteModel
{
    BitModel node[256];

    void
    encode(RangeEncoder &enc, std::uint8_t byte)
    {
        std::uint32_t ctx = 1;
        for (int i = 7; i >= 0; --i) {
            int bit = (byte >> i) & 1;
            enc.encode(node[ctx], bit);
            ctx = ctx * 2 + static_cast<std::uint32_t>(bit);
        }
    }

    std::uint8_t
    decode(RangeDecoder &dec)
    {
        std::uint32_t ctx = 1;
        for (int i = 0; i < 8; ++i)
            ctx = ctx * 2 + static_cast<std::uint32_t>(
                                dec.decode(node[ctx]));
        return static_cast<std::uint8_t>(ctx & 0xFF);
    }
};

// --------------------------------------------------------------------
// .strc trace files
// --------------------------------------------------------------------

/** One decoded trace record. Lengths are 0 when the file carries no
 *  length columns (StrcHeader::hasLengths). */
struct TraceRecord
{
    Seconds time = 0.0;
    std::uint32_t model = 0;
    std::uint32_t inputLen = 0;
    std::uint32_t targetOutput = 0;
};

struct StrcHeader
{
    bool hasLengths = false;
    std::uint32_t numModels = 0;
    std::uint64_t totalRequests = 0;
    Seconds duration = 0.0;
};

/** Default records per chunk; tests shrink it to force multi-chunk
 *  files from small inputs. 64 Ki records decode into ~1.5 MB — the
 *  streaming reader's whole in-memory footprint per file. */
constexpr std::uint32_t kStrcChunkCap = 1u << 16;

class StrcWriter
{
  public:
    StrcWriter() = default;
    ~StrcWriter();

    StrcWriter(const StrcWriter &) = delete;
    StrcWriter &operator=(const StrcWriter &) = delete;

    /** Create `path`. `hdr.totalRequests` may be 0 (unknown); it is
     *  restamped from the actual record count at finish(). */
    bool open(const std::string &path, const StrcHeader &hdr,
              std::string *err,
              std::uint32_t chunkCap = kStrcChunkCap);

    /** Append one record. Records must arrive in nondecreasing time
     *  order (checked fatally — the format delta-codes timestamps and
     *  the replay path requires sortedness anyway). */
    void add(const TraceRecord &rec);

    /** Flush the tail chunk, write index + footer, close. */
    bool finish(std::string *err);

    std::uint64_t written() const { return written_; }

  private:
    void flushChunk();

    struct IndexEntry
    {
        std::uint64_t offset = 0;
        std::uint32_t count = 0;
        Seconds firstTime = 0.0;
    };

    std::FILE *file_ = nullptr;
    std::string path_;
    StrcHeader hdr_;
    std::uint32_t chunkCap_ = kStrcChunkCap;
    std::vector<TraceRecord> pending_;
    std::vector<IndexEntry> index_;
    std::uint64_t written_ = 0;
    Seconds lastTime_ = 0.0;
};

class StrcReader
{
  public:
    StrcReader() = default;
    ~StrcReader();

    StrcReader(const StrcReader &) = delete;
    StrcReader &operator=(const StrcReader &) = delete;

    /**
     * Open `path`. A valid footer loads the seekable index; a missing
     * or corrupt one (torn file) falls back to a sequential scan that
     * keeps every complete checksummed chunk (recovered() turns true
     * and recordCount() may undershoot header().totalRequests).
     */
    bool open(const std::string &path, std::string *err);

    const StrcHeader &header() const { return hdr_; }
    std::size_t chunkCount() const { return index_.size(); }
    /** Records across all readable chunks. */
    std::uint64_t recordCount() const { return records_; }
    /** True when the index was rebuilt by scanning (torn file). */
    bool recovered() const { return recovered_; }
    /** Compressed payload bytes across readable chunks. */
    std::uint64_t compressedBytes() const { return payloadBytes_; }

    /** First timestamp of chunk `i` (from the index — no decode). */
    Seconds firstTimeOfChunk(std::size_t i) const;

    /** Decode chunk `i` (seek + checksum + decode). */
    bool readChunk(std::size_t i, std::vector<TraceRecord> &out,
                   std::string *err);

    /** Sequential cursor over all records, pulling one chunk at a
     *  time; false at end-of-trace. Fatal on a chunk that validated
     *  at open but fails to read now (I/O error). */
    bool next(TraceRecord &rec);

  private:
    struct IndexEntry
    {
        std::uint64_t offset = 0;
        std::uint32_t count = 0;
        Seconds firstTime = 0.0;
    };

    bool loadIndex(std::string *err);
    void scanChunks();

    std::FILE *file_ = nullptr;
    std::string path_;
    StrcHeader hdr_;
    std::vector<IndexEntry> index_;
    std::uint64_t records_ = 0;
    std::uint64_t payloadBytes_ = 0;
    bool recovered_ = false;

    // next() cursor
    std::vector<TraceRecord> cur_;
    std::size_t curChunk_ = 0; ///< next chunk to decode
    std::size_t curPos_ = 0;
};

// --------------------------------------------------------------------
// .strz byte streams (compressed JSONL stores)
// --------------------------------------------------------------------

/**
 * Append-oriented compressed byte-stream: each appendBlock() call
 * lands as one independently decodable, checksummed chunk, flushed
 * before returning — the same per-record durability as the JSONL
 * store, at order-1-context-model compression.
 */
class StrzWriter
{
  public:
    StrzWriter() = default;
    ~StrzWriter();

    StrzWriter(const StrzWriter &) = delete;
    StrzWriter &operator=(const StrzWriter &) = delete;

    /** Open for append, writing the header iff the file is new (or
     *  `truncate` rewrites it from scratch). */
    bool open(const std::string &path, bool truncate, std::string *err);

    /** Compress + append + flush one chunk. */
    bool appendBlock(const std::string &bytes, std::string *err);

    void close();

  private:
    std::FILE *file_ = nullptr;
};

/**
 * Decompress every complete chunk of an .strz file into `out`. A torn
 * tail chunk (mid-append crash) sets *torn and is dropped; a missing
 * file yields empty output. Returns false only on real corruption or
 * unreadable headers.
 */
bool strzReadAll(const std::string &path, std::string &out,
                 std::string *err, bool *torn);

} // namespace stream
} // namespace slinfer

#endif // SLINFER_STREAM_CODEC_HH
