#include "stream/feed.hh"

#include <utility>

#include "common/log.hh"

namespace slinfer
{
namespace stream
{

StreamingArrivalFeed::StreamingArrivalFeed(
    Simulator &sim, RequestSource &src, std::uint32_t lookahead,
    Materialize mat, Submit submit, Recycle recycle)
    : sim_(sim), src_(src), lookahead_(lookahead),
      mat_(std::move(mat)), submit_(std::move(submit)),
      recycle_(std::move(recycle))
{
    if (lookahead_ == 0)
        fatal("StreamingArrivalFeed: lookahead must be positive");
}

void
StreamingArrivalFeed::start()
{
    if (started_)
        fatal("StreamingArrivalFeed::start called twice");
    started_ = true;
    seqBase_ = sim_.reserveSeqBand(kBandWidth);
    pump();
}

void
StreamingArrivalFeed::pump()
{
    while (!exhausted_ && liveWindow_ < lookahead_) {
        TraceRecord rec;
        if (!src_.next(rec)) {
            exhausted_ = true;
            break;
        }
        if (pulled_ > 0 && rec.time < lastTime_)
            fatal("StreamingArrivalFeed: source records out of time "
                  "order");
        lastTime_ = rec.time;
        if (pulled_ >= kBandWidth)
            fatal("StreamingArrivalFeed: arrival seq band exhausted");
        std::uint64_t seq = seqBase_ + pulled_++;
        // Materialize in trace order even when the record will never
        // be scheduled: RNG/id parity with the materialized path.
        Request *r = mat_(rec);
        if (rec.model < retired_.size() && retired_[rec.model]) {
            recycle_(r);
            continue; // the seq is consumed, as schedule-then-cancel
                      // would have consumed it
        }
        window_.push_back(Entry{});
        Entry &e = window_.back();
        e.req = r;
        e.ev = sim_.scheduleAtSeq(rec.time, seq,
                                  [this, r] { fired(r); });
        ++liveWindow_;
    }
}

void
StreamingArrivalFeed::fired(Request *r)
{
    // Cancelled (retired) entries never fire; drop their husks so the
    // front is the arrival that is firing right now — events in the
    // band fire in strictly ascending seq = window order.
    while (!window_.empty() && window_.front().req == nullptr)
        window_.pop_front();
    if (window_.empty() || window_.front().req != r)
        fatal("StreamingArrivalFeed: arrival fired out of window "
              "order");
    window_.pop_front();
    --liveWindow_;
    ++fired_;
    submit_(r);
    pump();
}

void
StreamingArrivalFeed::retireModel(ModelId m)
{
    if (m >= retired_.size())
        retired_.resize(m + 1, false);
    retired_[m] = true;
    for (Entry &e : window_) {
        if (e.req && e.req->model == m) {
            e.ev.cancel();
            recycle_(e.req);
            e.req = nullptr;
            --liveWindow_;
        }
    }
    // The cancellations freed window slots: refill so the lookahead
    // horizon never shrinks below later models' arrivals.
    if (started_)
        pump();
}

} // namespace stream
} // namespace slinfer
