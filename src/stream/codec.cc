#include "stream/codec.hh"

#include <cstring>
#include <sys/stat.h>

#include "common/log.hh"

namespace slinfer
{
namespace stream
{

// --------------------------------------------------------------------
// Primitives
// --------------------------------------------------------------------

namespace
{

struct Crc32Table
{
    std::uint32_t t[256];
    Crc32Table()
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
    }
};

} // namespace

std::uint32_t
crc32(const void *data, std::size_t n, std::uint32_t seed)
{
    static const Crc32Table table;
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = table.t[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>(v | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

bool
getVarint(const std::uint8_t *&p, const std::uint8_t *end,
          std::uint64_t &v)
{
    v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
        if (p >= end)
            return false;
        std::uint8_t b = *p++;
        v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
        if ((b & 0x80) == 0)
            return true;
    }
    return false;
}

// --------------------------------------------------------------------
// Fixed-width little-endian framing helpers
// --------------------------------------------------------------------

namespace
{

constexpr char kStrcMagic[6] = {'S', 'T', 'R', 'C', '1', '\n'};
constexpr std::uint8_t kStrcVersion = 1;
constexpr std::uint32_t kChunkMagic = 0x4B484353u;  // "SCHK"
constexpr std::uint32_t kIndexMagic = 0x58444953u;  // "SIDX"
constexpr char kTailMagic[8] = {'S', 'T', 'R', 'C',
                                'E', 'N', 'D', '\n'};
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kChunkHeaderBytes = 24;
constexpr std::size_t kFooterBytes = 16;
/** Refuse absurd on-disk sizes before allocating (corrupt field). */
constexpr std::uint32_t kMaxPayload = 1u << 30;

void
put32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
put64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putF64(std::string &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    put64(out, bits);
}

std::uint32_t
get32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
get64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

double
getF64(const std::uint8_t *p)
{
    std::uint64_t bits = get64(p);
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
}

bool
readExact(std::FILE *f, void *buf, std::size_t n)
{
    return std::fread(buf, 1, n, f) == n;
}

bool
writeAll(std::FILE *f, const std::string &bytes)
{
    return std::fwrite(bytes.data(), 1, bytes.size(), f) ==
           bytes.size();
}

bool
fail(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
    return false;
}

// --------------------------------------------------------------------
// Column context models (reset per chunk => independent decode)
// --------------------------------------------------------------------

/** Per-chunk adaptive state for the trace columns: ~140 KB, heap
 *  allocated once per chunk encode/decode. */
struct ChunkModels
{
    /** Significant-byte count of the time XOR-delta (0..8), a 4-bit
     *  tree conditioned on the previous count. */
    BitModel timeLen[9][16];
    /** The delta's significant bytes, one order-0 model per byte
     *  position (exponent/high-mantissa positions have very different
     *  statistics from low-mantissa noise). */
    ByteModel timeByte[8];
    /** Model-id varint bytes, order-1 on the previous column byte —
     *  a bigram model over the (skewed, repetitive) id stream. */
    ByteModel modelByte[256];
    /** Length varint bytes per column, keyed by byte position. */
    ByteModel lenByte[2][5];
};

void
encodeTimeDelta(RangeEncoder &enc, ChunkModels &m, std::uint64_t x,
                int &prevK)
{
    int k = 0;
    for (std::uint64_t t = x; t != 0; t >>= 8)
        ++k;
    std::uint32_t ctx = 1;
    for (int bit = 3; bit >= 0; --bit) {
        int b = (k >> bit) & 1;
        enc.encode(m.timeLen[prevK][ctx], b);
        ctx = ctx * 2 + static_cast<std::uint32_t>(b);
    }
    for (int i = k - 1; i >= 0; --i)
        m.timeByte[i].encode(
            enc, static_cast<std::uint8_t>((x >> (8 * i)) & 0xFF));
    prevK = k;
}

std::uint64_t
decodeTimeDelta(RangeDecoder &dec, ChunkModels &m, int &prevK)
{
    std::uint32_t ctx = 1;
    for (int bit = 0; bit < 4; ++bit)
        ctx = ctx * 2 + static_cast<std::uint32_t>(
                            dec.decode(m.timeLen[prevK][ctx]));
    int k = static_cast<int>(ctx & 0xF);
    std::uint64_t x = 0;
    for (int i = k - 1; i >= 0; --i)
        x |= static_cast<std::uint64_t>(m.timeByte[i].decode(dec))
             << (8 * i);
    prevK = k <= 8 ? k : 8; // corrupt payloads must not index OOB
    return x;
}

void
encodeVarintBytes(RangeEncoder &enc, std::uint64_t v, ByteModel *models,
                  int nModels, std::uint8_t *prevByteCtx)
{
    std::string tmp;
    putVarint(tmp, v);
    for (std::size_t i = 0; i < tmp.size(); ++i) {
        std::uint8_t b = static_cast<std::uint8_t>(tmp[i]);
        if (prevByteCtx) {
            models[*prevByteCtx].encode(enc, b);
            *prevByteCtx = b;
        } else {
            int pos = static_cast<int>(i) < nModels - 1
                          ? static_cast<int>(i)
                          : nModels - 1;
            models[pos].encode(enc, b);
        }
    }
}

std::uint64_t
decodeVarintBytes(RangeDecoder &dec, ByteModel *models, int nModels,
                  std::uint8_t *prevByteCtx)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 10; ++i) {
        std::uint8_t b;
        if (prevByteCtx) {
            b = models[*prevByteCtx].decode(dec);
            *prevByteCtx = b;
        } else {
            int pos = i < nModels - 1 ? i : nModels - 1;
            b = models[pos].decode(dec);
        }
        v |= static_cast<std::uint64_t>(b & 0x7F) << (7 * i);
        if ((b & 0x80) == 0)
            break;
    }
    return v;
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    return bits;
}

double
bitsDouble(std::uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
}

/** Encode `recs` columnar into one range-coded payload. */
std::string
encodeChunk(const std::vector<TraceRecord> &recs, bool hasLengths)
{
    auto m = std::make_unique<ChunkModels>();
    std::string out;
    out.reserve(recs.size() * 4);
    RangeEncoder enc(out);

    std::uint64_t prevBits = 0;
    int prevK = 0;
    for (const TraceRecord &r : recs) {
        std::uint64_t bits = doubleBits(r.time);
        encodeTimeDelta(enc, *m, bits ^ prevBits, prevK);
        prevBits = bits;
    }
    std::uint8_t prevModelByte = 0;
    for (const TraceRecord &r : recs)
        encodeVarintBytes(enc, r.model, m->modelByte, 256,
                          &prevModelByte);
    if (hasLengths) {
        for (const TraceRecord &r : recs)
            encodeVarintBytes(enc, r.inputLen, m->lenByte[0], 5,
                              nullptr);
        for (const TraceRecord &r : recs)
            encodeVarintBytes(enc, r.targetOutput, m->lenByte[1], 5,
                              nullptr);
    }
    enc.finish();
    return out;
}

/** Mirror of encodeChunk. */
void
decodeChunk(const std::uint8_t *payload, std::size_t n,
            std::uint32_t count, bool hasLengths,
            std::vector<TraceRecord> &out)
{
    auto m = std::make_unique<ChunkModels>();
    RangeDecoder dec(payload, n);
    out.clear();
    out.resize(count);

    std::uint64_t prevBits = 0;
    int prevK = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint64_t bits =
            decodeTimeDelta(dec, *m, prevK) ^ prevBits;
        out[i].time = bitsDouble(bits);
        prevBits = bits;
    }
    std::uint8_t prevModelByte = 0;
    for (std::uint32_t i = 0; i < count; ++i)
        out[i].model = static_cast<std::uint32_t>(decodeVarintBytes(
            dec, m->modelByte, 256, &prevModelByte));
    if (hasLengths) {
        for (std::uint32_t i = 0; i < count; ++i)
            out[i].inputLen = static_cast<std::uint32_t>(
                decodeVarintBytes(dec, m->lenByte[0], 5, nullptr));
        for (std::uint32_t i = 0; i < count; ++i)
            out[i].targetOutput = static_cast<std::uint32_t>(
                decodeVarintBytes(dec, m->lenByte[1], 5, nullptr));
    }
}

std::string
strcHeaderBytes(const StrcHeader &hdr)
{
    std::string out;
    out.append(kStrcMagic, sizeof(kStrcMagic));
    out.push_back(static_cast<char>(kStrcVersion));
    out.push_back(static_cast<char>(hdr.hasLengths ? 1 : 0));
    put32(out, hdr.numModels);
    put32(out, 0); // reserved
    put64(out, hdr.totalRequests);
    putF64(out, hdr.duration);
    return out;
}

} // namespace

// --------------------------------------------------------------------
// StrcWriter
// --------------------------------------------------------------------

StrcWriter::~StrcWriter()
{
    if (file_)
        std::fclose(file_);
}

bool
StrcWriter::open(const std::string &path, const StrcHeader &hdr,
                 std::string *err, std::uint32_t chunkCap)
{
    if (file_)
        fatal("StrcWriter::open: already open");
    if (chunkCap == 0)
        fatal("StrcWriter::open: chunkCap must be positive");
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        return fail(err, "cannot create " + path);
    path_ = path;
    hdr_ = hdr;
    chunkCap_ = chunkCap;
    if (!writeAll(file_, strcHeaderBytes(hdr_)))
        return fail(err, "write error on " + path);
    return true;
}

void
StrcWriter::add(const TraceRecord &rec)
{
    if (!file_)
        fatal("StrcWriter::add before open");
    if (written_ > 0 && rec.time < lastTime_)
        fatal("StrcWriter::add: records must be sorted by time");
    lastTime_ = rec.time;
    pending_.push_back(rec);
    ++written_;
    if (pending_.size() >= chunkCap_)
        flushChunk();
}

void
StrcWriter::flushChunk()
{
    if (pending_.empty())
        return;
    std::string payload = encodeChunk(pending_, hdr_.hasLengths);

    IndexEntry e;
    e.offset = static_cast<std::uint64_t>(std::ftell(file_));
    e.count = static_cast<std::uint32_t>(pending_.size());
    e.firstTime = pending_.front().time;
    index_.push_back(e);

    std::string frame;
    put32(frame, kChunkMagic);
    put32(frame, e.count);
    put32(frame, static_cast<std::uint32_t>(payload.size()));
    put32(frame, crc32(payload.data(), payload.size()));
    putF64(frame, e.firstTime);
    if (!writeAll(file_, frame) || !writeAll(file_, payload))
        fatal("StrcWriter: write error on " + path_);
    pending_.clear();
}

bool
StrcWriter::finish(std::string *err)
{
    if (!file_)
        fatal("StrcWriter::finish before open");
    flushChunk();

    std::string index;
    put64(index, static_cast<std::uint64_t>(index_.size()));
    for (const IndexEntry &e : index_) {
        put64(index, e.offset);
        put32(index, e.count);
        putF64(index, e.firstTime);
    }
    std::uint64_t indexOffset =
        static_cast<std::uint64_t>(std::ftell(file_));
    std::string tail;
    put32(tail, kIndexMagic);
    tail += index;
    put32(tail, crc32(index.data(), index.size()));
    put64(tail, indexOffset);
    tail.append(kTailMagic, sizeof(kTailMagic));
    if (!writeAll(file_, tail))
        return fail(err, "write error on " + path_);

    // Restamp the header's record count: callers streaming an
    // unknown-size source open with totalRequests = 0.
    hdr_.totalRequests = written_;
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        !writeAll(file_, strcHeaderBytes(hdr_)))
        return fail(err, "header restamp failed on " + path_);

    if (std::fclose(file_) != 0) {
        file_ = nullptr;
        return fail(err, "close failed on " + path_);
    }
    file_ = nullptr;
    return true;
}

// --------------------------------------------------------------------
// StrcReader
// --------------------------------------------------------------------

StrcReader::~StrcReader()
{
    if (file_)
        std::fclose(file_);
}

bool
StrcReader::open(const std::string &path, std::string *err)
{
    if (file_)
        fatal("StrcReader::open: already open");
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        return fail(err, "cannot open " + path);
    path_ = path;

    std::uint8_t hdr[kHeaderBytes];
    if (!readExact(file_, hdr, sizeof(hdr)))
        return fail(err, path + ": not a .strc file (short header)");
    if (std::memcmp(hdr, kStrcMagic, sizeof(kStrcMagic)) != 0)
        return fail(err, path + ": not a .strc file (bad magic)");
    if (hdr[6] != kStrcVersion)
        return fail(err, path + ": unsupported .strc version " +
                             std::to_string(hdr[6]));
    hdr_.hasLengths = hdr[7] != 0;
    hdr_.numModels = get32(hdr + 8);
    hdr_.totalRequests = get64(hdr + 16);
    hdr_.duration = getF64(hdr + 24);

    if (!loadIndex(err)) {
        // Torn or corrupt tail: salvage every complete chunk.
        recovered_ = true;
        scanChunks();
    }
    for (const IndexEntry &e : index_)
        records_ += e.count;
    return true;
}

bool
StrcReader::loadIndex(std::string *err)
{
    if (std::fseek(file_, 0, SEEK_END) != 0)
        return fail(err, "seek failed");
    long size = std::ftell(file_);
    if (size < static_cast<long>(kHeaderBytes + kFooterBytes))
        return fail(err, "no footer");
    std::uint8_t foot[kFooterBytes];
    if (std::fseek(file_, size - static_cast<long>(kFooterBytes),
                   SEEK_SET) != 0 ||
        !readExact(file_, foot, sizeof(foot)))
        return fail(err, "short footer");
    if (std::memcmp(foot + 8, kTailMagic, sizeof(kTailMagic)) != 0)
        return fail(err, "bad tail magic");
    std::uint64_t indexOffset = get64(foot);
    if (indexOffset < kHeaderBytes ||
        indexOffset + kFooterBytes > static_cast<std::uint64_t>(size))
        return fail(err, "index offset out of range");

    if (std::fseek(file_, static_cast<long>(indexOffset), SEEK_SET) !=
        0)
        return fail(err, "seek failed");
    std::uint8_t fixed[12];
    if (!readExact(file_, fixed, sizeof(fixed)))
        return fail(err, "short index");
    if (get32(fixed) != kIndexMagic)
        return fail(err, "bad index magic");
    std::uint64_t n = get64(fixed + 4);
    std::uint64_t bodyBytes = 8 + n * 20;
    if (n > (1ull << 32) ||
        indexOffset + 4 + bodyBytes + 4 + kFooterBytes >
            static_cast<std::uint64_t>(size))
        return fail(err, "index size out of range");

    std::vector<std::uint8_t> body(bodyBytes);
    std::memcpy(body.data(), fixed + 4, 8);
    if (!readExact(file_, body.data() + 8, bodyBytes - 8))
        return fail(err, "short index body");
    std::uint8_t crcBuf[4];
    if (!readExact(file_, crcBuf, 4) ||
        get32(crcBuf) != crc32(body.data(), body.size()))
        return fail(err, "index checksum mismatch");

    index_.clear();
    const std::uint8_t *p = body.data() + 8;
    for (std::uint64_t i = 0; i < n; ++i, p += 20) {
        IndexEntry e;
        e.offset = get64(p);
        e.count = get32(p + 8);
        e.firstTime = getF64(p + 12);
        index_.push_back(e);
    }
    // Total compressed payload: chunks span [header, index), each with
    // a fixed frame header in front of its payload.
    payloadBytes_ = indexOffset - kHeaderBytes - n * kChunkHeaderBytes;
    return true;
}

void
StrcReader::scanChunks()
{
    index_.clear();
    std::uint64_t pos = kHeaderBytes;
    std::vector<std::uint8_t> payload;
    for (;;) {
        if (std::fseek(file_, static_cast<long>(pos), SEEK_SET) != 0)
            return;
        std::uint8_t ch[kChunkHeaderBytes];
        if (!readExact(file_, ch, sizeof(ch)))
            return; // clean EOF or torn mid-header
        if (get32(ch) != kChunkMagic)
            return; // index region, or garbage: stop salvaging
        std::uint32_t count = get32(ch + 4);
        std::uint32_t payloadSize = get32(ch + 8);
        std::uint32_t crc = get32(ch + 12);
        if (payloadSize > kMaxPayload)
            return;
        payload.resize(payloadSize);
        if (!readExact(file_, payload.data(), payloadSize))
            return; // torn mid-payload
        if (crc32(payload.data(), payload.size()) != crc)
            return; // corrupt chunk: everything before it survives
        IndexEntry e;
        e.offset = pos;
        e.count = count;
        e.firstTime = getF64(ch + 16);
        index_.push_back(e);
        payloadBytes_ += payloadSize;
        pos += kChunkHeaderBytes + payloadSize;
    }
}

Seconds
StrcReader::firstTimeOfChunk(std::size_t i) const
{
    if (i >= index_.size())
        fatal("StrcReader::firstTimeOfChunk: index out of range");
    return index_[i].firstTime;
}

bool
StrcReader::readChunk(std::size_t i, std::vector<TraceRecord> &out,
                      std::string *err)
{
    if (i >= index_.size())
        return fail(err, "chunk index out of range");
    const IndexEntry &e = index_[i];
    if (std::fseek(file_, static_cast<long>(e.offset), SEEK_SET) != 0)
        return fail(err, "seek failed");
    std::uint8_t ch[kChunkHeaderBytes];
    if (!readExact(file_, ch, sizeof(ch)) || get32(ch) != kChunkMagic)
        return fail(err, "bad chunk header");
    std::uint32_t count = get32(ch + 4);
    std::uint32_t payloadSize = get32(ch + 8);
    std::uint32_t crc = get32(ch + 12);
    if (count != e.count)
        return fail(err, "chunk count disagrees with index");
    if (payloadSize > kMaxPayload)
        return fail(err, "chunk payload size out of range");
    std::vector<std::uint8_t> payload(payloadSize);
    if (!readExact(file_, payload.data(), payloadSize))
        return fail(err, "short chunk payload");
    if (crc32(payload.data(), payload.size()) != crc)
        return fail(err, "chunk checksum mismatch");
    decodeChunk(payload.data(), payload.size(), count, hdr_.hasLengths,
                out);
    return true;
}

bool
StrcReader::next(TraceRecord &rec)
{
    while (curPos_ >= cur_.size()) {
        if (curChunk_ >= index_.size())
            return false;
        std::string err;
        if (!readChunk(curChunk_, cur_, &err))
            fatal("StrcReader: " + path_ + " chunk " +
                  std::to_string(curChunk_) + ": " + err);
        ++curChunk_;
        curPos_ = 0;
    }
    rec = cur_[curPos_++];
    return true;
}

// --------------------------------------------------------------------
// .strz byte streams
// --------------------------------------------------------------------

namespace
{

constexpr char kStrzMagic[6] = {'S', 'T', 'R', 'Z', '1', '\n'};
constexpr std::uint8_t kStrzVersion = 1;
constexpr std::uint32_t kStrzChunkMagic = 0x4B435A53u; // "SZCK"
constexpr std::size_t kStrzHeaderBytes = 8;
constexpr std::size_t kStrzChunkHeaderBytes = 16;

std::string
strzHeaderBytes()
{
    std::string out;
    out.append(kStrzMagic, sizeof(kStrzMagic));
    out.push_back(static_cast<char>(kStrzVersion));
    out.push_back('\0');
    return out;
}

/** Order-1 adaptive byte models (128 KB, heap-allocated per block). */
struct StrzModels
{
    ByteModel byCtx[256];
};

std::string
strzCompress(const std::string &bytes)
{
    auto m = std::make_unique<StrzModels>();
    std::string out;
    out.reserve(bytes.size() / 2 + 16);
    RangeEncoder enc(out);
    std::uint8_t prev = 0;
    for (char c : bytes) {
        std::uint8_t b = static_cast<std::uint8_t>(c);
        m->byCtx[prev].encode(enc, b);
        prev = b;
    }
    enc.finish();
    return out;
}

void
strzDecompress(const std::uint8_t *payload, std::size_t n,
               std::uint32_t rawSize, std::string &out)
{
    auto m = std::make_unique<StrzModels>();
    RangeDecoder dec(payload, n);
    std::uint8_t prev = 0;
    for (std::uint32_t i = 0; i < rawSize; ++i) {
        std::uint8_t b = m->byCtx[prev].decode(dec);
        out.push_back(static_cast<char>(b));
        prev = b;
    }
}

} // namespace

StrzWriter::~StrzWriter() { close(); }

void
StrzWriter::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

bool
StrzWriter::open(const std::string &path, bool truncate,
                 std::string *err)
{
    if (file_)
        fatal("StrzWriter::open: already open");
    if (!truncate) {
        if (std::FILE *in = std::fopen(path.c_str(), "rb")) {
            std::uint8_t hdr[kStrzHeaderBytes];
            bool have = readExact(in, hdr, sizeof(hdr));
            std::fclose(in);
            if (have) {
                if (std::memcmp(hdr, kStrzMagic, sizeof(kStrzMagic)) !=
                        0 ||
                    hdr[6] != kStrzVersion)
                    return fail(err,
                                path + ": not a .strz store");
                file_ = std::fopen(path.c_str(), "ab");
                if (!file_)
                    return fail(err, "cannot append to " + path);
                return true;
            }
            // Empty or sub-header file: rewrite it from scratch.
        }
    }
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        return fail(err, "cannot create " + path);
    if (!writeAll(file_, strzHeaderBytes()))
        return fail(err, "write error on " + path);
    std::fflush(file_);
    return true;
}

bool
StrzWriter::appendBlock(const std::string &bytes, std::string *err)
{
    if (!file_)
        fatal("StrzWriter::appendBlock before open");
    std::string payload = strzCompress(bytes);
    std::string frame;
    put32(frame, kStrzChunkMagic);
    put32(frame, static_cast<std::uint32_t>(bytes.size()));
    put32(frame, static_cast<std::uint32_t>(payload.size()));
    put32(frame, crc32(payload.data(), payload.size()));
    if (!writeAll(file_, frame) || !writeAll(file_, payload))
        return fail(err, "write error on .strz store");
    std::fflush(file_);
    return true;
}

bool
strzReadAll(const std::string &path, std::string &out,
            std::string *err, bool *torn)
{
    out.clear();
    if (torn)
        *torn = false;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return true; // absent store == empty store
    std::uint8_t hdr[kStrzHeaderBytes];
    if (!readExact(f, hdr, sizeof(hdr))) {
        // Sub-header file: a create interrupted before the header
        // landed. Treat as torn-empty.
        std::fclose(f);
        if (torn)
            *torn = true;
        return true;
    }
    if (std::memcmp(hdr, kStrzMagic, sizeof(kStrzMagic)) != 0 ||
        hdr[6] != kStrzVersion) {
        std::fclose(f);
        return fail(err, path + ": not a .strz store");
    }
    std::vector<std::uint8_t> payload;
    for (;;) {
        std::uint8_t ch[kStrzChunkHeaderBytes];
        std::size_t got = std::fread(ch, 1, sizeof(ch), f);
        if (got == 0)
            break; // clean EOF
        if (got < sizeof(ch)) {
            if (torn)
                *torn = true; // torn mid-chunk-header
            break;
        }
        if (get32(ch) != kStrzChunkMagic) {
            std::fclose(f);
            return fail(err, path + ": corrupt chunk magic");
        }
        std::uint32_t rawSize = get32(ch + 4);
        std::uint32_t compSize = get32(ch + 8);
        std::uint32_t crc = get32(ch + 12);
        if (rawSize > kMaxPayload || compSize > kMaxPayload) {
            std::fclose(f);
            return fail(err, path + ": chunk size out of range");
        }
        payload.resize(compSize);
        if (!readExact(f, payload.data(), compSize)) {
            if (torn)
                *torn = true; // torn mid-payload
            break;
        }
        if (crc32(payload.data(), payload.size()) != crc) {
            std::fclose(f);
            return fail(err, path + ": chunk checksum mismatch");
        }
        strzDecompress(payload.data(), payload.size(), rawSize, out);
    }
    std::fclose(f);
    return true;
}

} // namespace stream
} // namespace slinfer
