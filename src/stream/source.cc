#include "stream/source.hh"

namespace slinfer
{
namespace stream
{

namespace
{

class VectorSource final : public RequestSource
{
  public:
    explicit VectorSource(AzureTrace trace) : trace_(std::move(trace))
    {
    }

    bool
    next(TraceRecord &rec) override
    {
        if (pos_ >= trace_.arrivals.size())
            return false;
        const Arrival &a = trace_.arrivals[pos_++];
        rec = TraceRecord{};
        rec.time = a.time;
        rec.model = a.model;
        return true;
    }

    Seconds duration() const override { return trace_.duration; }
    bool hasLengths() const override { return false; }
    std::uint64_t
    sizeHint() const override
    {
        return trace_.arrivals.size();
    }

  private:
    AzureTrace trace_;
    std::size_t pos_ = 0;
};

class StrcSource final : public RequestSource
{
  public:
    explicit StrcSource(std::unique_ptr<StrcReader> reader)
        : reader_(std::move(reader))
    {
    }

    bool
    next(TraceRecord &rec) override
    {
        return reader_->next(rec);
    }

    Seconds
    duration() const override
    {
        return reader_->header().duration;
    }

    bool
    hasLengths() const override
    {
        return reader_->header().hasLengths;
    }

    std::uint64_t
    sizeHint() const override
    {
        return reader_->recordCount();
    }

  private:
    std::unique_ptr<StrcReader> reader_;
};

} // namespace

RequestSourcePtr
makeVectorSource(AzureTrace trace)
{
    return std::make_unique<VectorSource>(std::move(trace));
}

RequestSourcePtr
makeStrcSource(const std::string &path, std::string *err)
{
    auto reader = std::make_unique<StrcReader>();
    if (!reader->open(path, err))
        return nullptr;
    return std::make_unique<StrcSource>(std::move(reader));
}

} // namespace stream
} // namespace slinfer
