/**
 * @file
 * Bounded-lookahead arrival scheduling: stream::StreamingArrivalFeed.
 *
 * The materialized Session pre-builds every Request and bulk-schedules
 * every arrival event before the run starts — O(trace) memory. The
 * feed replaces that with a sliding window: at most `lookahead`
 * arrivals are scheduled-but-unfired at any instant, and each fired
 * arrival pulls the next record from the RequestSource. Settled
 * requests are recycled through the caller (a free-list pool), so the
 * live Request count is bounded by lookahead + in-flight regardless of
 * trace length.
 *
 * Byte-identity with the materialized path (the contract in
 * DESIGN.md, "Bounded-lookahead streaming") rests on two
 * mechanisms:
 *
 *  1. **Sequence-band reservation.** Event ties at equal timestamps
 *     break by schedule order (EventQueue seq). start() reserves one
 *     contiguous seq band at the exact construction point where the
 *     materialized Session schedules its arrival loop, and trace
 *     arrival k is scheduled with explicit seq base + k — the very seq
 *     it gets in materialized mode. Runtime events schedule after the
 *     band, so every cross-event ordering comparison resolves
 *     identically in both modes.
 *
 *  2. **Trace-order materialization.** The materialize callback (which
 *     consumes the session's length RNG and id counter) runs in strict
 *     trace order, exactly like the materialized up-front loop —
 *     records of retired models included: they are materialized (RNG
 *     parity), then recycled instead of scheduled, mirroring the
 *     materialized path's schedule-then-cancel.
 */

#ifndef SLINFER_STREAM_FEED_HH
#define SLINFER_STREAM_FEED_HH

#include <deque>
#include <functional>
#include <vector>

#include "engine/request.hh"
#include "sim/simulator.hh"
#include "stream/source.hh"

namespace slinfer
{
namespace stream
{

class StreamingArrivalFeed
{
  public:
    /** Build one Request from a record, in trace order (consumes the
     *  session's length RNG / id counter). */
    using Materialize = std::function<Request *(const TraceRecord &)>;
    /** Deliver a fired arrival to the serving system. */
    using Submit = std::function<void(Request *)>;
    /** Return a request that will never be submitted (retired model)
     *  to the caller's pool. */
    using Recycle = std::function<void(Request *)>;

    StreamingArrivalFeed(Simulator &sim, RequestSource &src,
                         std::uint32_t lookahead, Materialize mat,
                         Submit submit, Recycle recycle);

    StreamingArrivalFeed(const StreamingArrivalFeed &) = delete;
    StreamingArrivalFeed &operator=(const StreamingArrivalFeed &) =
        delete;

    /** Reserve the arrival seq band and schedule the first window.
     *  Must run at the Session-construction point where the
     *  materialized path schedules its arrival loop (see file
     *  comment); call exactly once, before any event fires. */
    void start();

    /** Stop scheduling arrivals for `m`: cancels the window's pending
     *  entries and recycles future records of `m` at pump time. The
     *  streaming half of Session::cancelFutureArrivals. */
    void retireModel(ModelId m);

    /** Records pulled from the source so far (retired skips count). */
    std::uint64_t pulled() const { return pulled_; }
    /** Arrivals actually submitted so far. */
    std::uint64_t replayed() const { return fired_; }
    /** True once the source is fully consumed. */
    bool exhausted() const { return exhausted_; }
    /** Scheduled-but-unfired arrivals right now (<= lookahead). */
    std::size_t windowSize() const { return liveWindow_; }

  private:
    void pump();
    void fired(Request *r);

    /** Covers any real trace (2^42 arrivals) while leaving the upper
     *  2^63 seqs for runtime events; width does not affect ordering —
     *  only band exhaustion would (checked fatally). */
    static constexpr std::uint64_t kBandWidth = 1ull << 42;

    struct Entry
    {
        Request *req = nullptr; ///< null after a retire-cancel
        EventHandle ev;
    };

    Simulator &sim_;
    RequestSource &src_;
    std::uint32_t lookahead_;
    Materialize mat_;
    Submit submit_;
    Recycle recycle_;

    std::uint64_t seqBase_ = 0;
    std::uint64_t pulled_ = 0;
    std::uint64_t fired_ = 0;
    std::size_t liveWindow_ = 0;
    bool started_ = false;
    bool exhausted_ = false;
    Seconds lastTime_ = 0.0;

    /** Scheduled window in trace order; fired/cancelled entries are
     *  popped or nulled. Deque: entries never move while referenced
     *  by their arrival event's cancel handle. */
    std::deque<Entry> window_;
    /** retired_[m] => records for m are recycled, not scheduled. */
    std::vector<bool> retired_;
};

} // namespace stream
} // namespace slinfer

#endif // SLINFER_STREAM_FEED_HH
