#include "engine/kv_cache.hh"

#include "common/log.hh"

namespace slinfer
{

PagedKvCache::PagedKvCache(Bytes bytesPerToken, Bytes allocBytes)
    : bytesPerToken_(bytesPerToken), allocBytes_(allocBytes)
{
    if (bytesPerToken == 0)
        panic("PagedKvCache: zero bytes per token");
}

Tokens
PagedKvCache::capacityTokens() const
{
    return static_cast<Tokens>(allocBytes_ / bytesPerToken_);
}

Bytes
PagedKvCache::usedBytes() const
{
    return static_cast<Bytes>(usedTokens_) * bytesPerToken_;
}

double
PagedKvCache::utilization() const
{
    if (allocBytes_ == 0)
        return 0.0;
    return static_cast<double>(usedBytes()) /
           static_cast<double>(allocBytes_);
}

Tokens
PagedKvCache::roundedTokens(Tokens len)
{
    if (len <= 0)
        return 0;
    return (len + kBlockTokens - 1) / kBlockTokens * kBlockTokens;
}

bool
PagedKvCache::canFit(Tokens extra) const
{
    return usedTokens_ + extra <= capacityTokens();
}

bool
PagedKvCache::reserve(Tokens tokens)
{
    if (!canFit(tokens))
        return false;
    usedTokens_ += tokens;
    return true;
}

void
PagedKvCache::release(Tokens tokens)
{
    if (tokens > usedTokens_)
        panic("PagedKvCache: releasing more than reserved");
    usedTokens_ -= tokens;
}

void
PagedKvCache::setAllocBytes(Bytes bytes)
{
    allocBytes_ = bytes;
}

} // namespace slinfer
