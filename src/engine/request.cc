#include "engine/request.hh"

namespace slinfer
{

Seconds
Request::deadlineForNextToken() const
{
    return arrival + grace + ttftSlo +
           tpotSlo * static_cast<double>(generated);
}

Seconds
Request::headroom(Seconds now) const
{
    return deadlineForNextToken() - now;
}

Seconds
Request::noteToken(Seconds t)
{
    Seconds slack = deadlineForNextToken() - t;
    if (slack < 0)
        sloViolated = true;
    if (generated == 0)
        firstTokenTime = t;
    ++generated;
    return slack;
}

} // namespace slinfer
