/**
 * @file
 * Cold-start weight loader.
 *
 * Thin engine-level wrapper around MemCostModel that schedules the
 * completion callbacks on the simulator; all systems in the paper share
 * the same ServerlessLLM-style fast loader (§IX-A), so this is common
 * machinery for SLINFER and the baselines alike.
 */

#ifndef SLINFER_ENGINE_LOADER_HH
#define SLINFER_ENGINE_LOADER_HH

#include <functional>

#include "hw/memcost_model.hh"
#include "sim/simulator.hh"

namespace slinfer
{

class Loader
{
  public:
    /** Latency of loading `m` onto `hw`. */
    static Seconds loadTime(const HardwareSpec &hw, const ModelSpec &m);

    /** Schedule a load; `done` fires when weights are resident. */
    static EventHandle scheduleLoad(Simulator &sim, const HardwareSpec &hw,
                                    const ModelSpec &m,
                                    std::function<void()> done);

    /** Schedule an unload; `done` fires when memory is reclaimable. */
    static EventHandle scheduleUnload(Simulator &sim,
                                      const HardwareSpec &hw,
                                      const ModelSpec &m,
                                      std::function<void()> done);
};

} // namespace slinfer

#endif // SLINFER_ENGINE_LOADER_HH
