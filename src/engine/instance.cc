#include "engine/instance.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"

namespace slinfer
{

Instance::Instance(InstanceId id_, ModelId model_id, const ModelSpec &m,
                   Partition *primary_, HardwareSpec exec_spec,
                   Bytes kv_alloc)
    : id(id_), modelId(model_id), model(m), primary(primary_),
      execSpec(std::move(exec_spec)), kv(m.kvBytesPerToken(), kv_alloc),
      kvTarget(kv_alloc)
{
}

Tokens
Instance::totalContext() const
{
    Tokens total = 0;
    for (const Request *r : decodeBatch)
        total += r->contextLen();
    return total;
}

Tokens
Instance::avgContextLen() const
{
    if (decodeBatch.empty())
        return 1;
    return std::max<Tokens>(
        1, totalContext() / static_cast<Tokens>(decodeBatch.size()));
}

bool
Instance::runnable() const
{
    if (state != InstanceState::Active || resizeInFlight)
        return false;
    return !prefillQueue.empty() || !decodeBatch.empty();
}

Request *
Instance::mostUrgent(Seconds now, bool &is_prefill) const
{
    Request *best = nullptr;
    Seconds best_h = std::numeric_limits<Seconds>::infinity();
    is_prefill = false;
    for (Request *r : prefillQueue) {
        Seconds h = r->headroom(now);
        if (h < best_h) {
            best_h = h;
            best = r;
            is_prefill = true;
        }
    }
    for (Request *r : decodeBatch) {
        Seconds h = r->headroom(now);
        if (h < best_h) {
            best_h = h;
            best = r;
            is_prefill = false;
        }
    }
    return best;
}

Seconds
Instance::minHeadroom(Seconds now) const
{
    bool is_prefill = false;
    Request *r = mostUrgent(now, is_prefill);
    return r ? r->headroom(now)
             : std::numeric_limits<Seconds>::infinity();
}

void
Instance::removeRequest(Request *req)
{
    auto erase_from = [req](std::vector<Request *> &v) {
        auto it = std::find(v.begin(), v.end(), req);
        if (it == v.end())
            return false;
        v.erase(it);
        return true;
    };
    if (!erase_from(prefillQueue) && !erase_from(decodeBatch))
        panic("Instance::removeRequest: request not found");
}

} // namespace slinfer
