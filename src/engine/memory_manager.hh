/**
 * @file
 * Physical memory ledger of one node partition.
 *
 * This is the ground truth the orchestration layer must never violate:
 * holds are byte amounts physically resident (weights, current KV
 * blocks, and the transient new allocation during a resize). tryHold()
 * refuses to go past capacity — an OOM. The SLINFER memory subsystem is
 * designed so that tryHold never fails; a property test drives random
 * scaling storms through it and asserts exactly that.
 */

#ifndef SLINFER_ENGINE_MEMORY_MANAGER_HH
#define SLINFER_ENGINE_MEMORY_MANAGER_HH

#include "common/types.hh"

namespace slinfer
{

class MemoryManager
{
  public:
    explicit MemoryManager(Bytes capacity);

    Bytes capacity() const { return capacity_; }
    Bytes used() const { return used_; }
    Bytes available() const { return capacity_ - used_; }

    /** True if `bytes` more would fit (no state change, not counted). */
    bool canHold(Bytes bytes) const { return used_ + bytes <= capacity_; }

    /** Physically take `bytes`; false (and no change) if it would OOM. */
    [[nodiscard]] bool tryHold(Bytes bytes);

    /** Release a previous hold. */
    void release(Bytes bytes);

    /** Count of tryHold calls that failed (observability for tests). */
    std::uint64_t oomEvents() const { return oomEvents_; }

  private:
    Bytes capacity_;
    Bytes used_ = 0;
    std::uint64_t oomEvents_ = 0;
};

} // namespace slinfer

#endif // SLINFER_ENGINE_MEMORY_MANAGER_HH
