#include "engine/loader.hh"

namespace slinfer
{

Seconds
Loader::loadTime(const HardwareSpec &hw, const ModelSpec &m)
{
    return MemCostModel::weightLoadTime(hw, m);
}

EventHandle
Loader::scheduleLoad(Simulator &sim, const HardwareSpec &hw,
                     const ModelSpec &m, std::function<void()> done)
{
    return sim.schedule(loadTime(hw, m), std::move(done));
}

EventHandle
Loader::scheduleUnload(Simulator &sim, const HardwareSpec &hw,
                       const ModelSpec &m, std::function<void()> done)
{
    return sim.schedule(MemCostModel::weightUnloadTime(hw, m),
                        std::move(done));
}

} // namespace slinfer
