#include "engine/node.hh"

#include "engine/instance.hh"

namespace slinfer
{

Partition::Partition(NodeId node_, int index_, HardwareSpec spec_)
    : node(node_), index(index_), spec(std::move(spec_)),
      mem(spec.memCapacity)
{
}

bool
Partition::openForPlacement() const
{
    return exclusiveHolder == nullptr && !failed;
}

Bytes
Partition::liveBytes() const
{
    Bytes live = 0;
    for (const Instance *inst : instances) {
        if (inst->state == InstanceState::Reclaimed)
            continue;
        if (inst->memResident)
            live += inst->model.weightBytes();
        live += inst->kv.usedBytes();
    }
    return live;
}

Node::Node(NodeId id, const HardwareSpec &spec, int numPartitions)
    : id_(id), spec_(spec)
{
    if (numPartitions <= 1) {
        parts_.push_back(std::make_unique<Partition>(id, 0, spec));
        return;
    }
    double frac = 1.0 / numPartitions;
    for (int i = 0; i < numPartitions; ++i) {
        parts_.push_back(std::make_unique<Partition>(
            id, i, scaledPartition(spec, frac)));
    }
}

bool
Node::failed() const
{
    for (const auto &p : parts_) {
        if (p->failed)
            return true;
    }
    return false;
}

void
Node::setFailed(bool failed)
{
    for (auto &p : parts_)
        p->failed = failed;
}

bool
Node::inUse() const
{
    for (const auto &p : parts_) {
        if (!p->instances.empty() || p->exclusiveHolder)
            return true;
    }
    return false;
}

Bytes
Node::memUsed() const
{
    Bytes used = 0;
    for (const auto &p : parts_)
        used += p->mem.used();
    return used;
}

Bytes
Node::memCapacity() const
{
    Bytes cap = 0;
    for (const auto &p : parts_)
        cap += p->mem.capacity();
    return cap;
}

} // namespace slinfer
