#include "engine/memory_manager.hh"

#include "common/log.hh"

namespace slinfer
{

MemoryManager::MemoryManager(Bytes capacity) : capacity_(capacity)
{
}

bool
MemoryManager::tryHold(Bytes bytes)
{
    if (used_ + bytes > capacity_) {
        ++oomEvents_;
        return false;
    }
    used_ += bytes;
    return true;
}

void
MemoryManager::release(Bytes bytes)
{
    if (bytes > used_)
        panic("MemoryManager: releasing more than held");
    used_ -= bytes;
}

} // namespace slinfer
