/**
 * @file
 * A model instance: one engine process serving one LLM on one partition,
 * with continuous batching (prefill queue + decode batch) and a paged
 * KV-cache whose allocation the memory subsystem resizes at runtime.
 */

#ifndef SLINFER_ENGINE_INSTANCE_HH
#define SLINFER_ENGINE_INSTANCE_HH

#include <vector>

#include "engine/kv_cache.hh"
#include "engine/node.hh"
#include "engine/request.hh"
#include "hw/model_spec.hh"
#include "sim/event_queue.hh"

namespace slinfer
{

enum class InstanceState
{
    Loading,   ///< weights streaming in (cold start)
    Active,
    Draining,  ///< preempted; finishing migration of its requests
    Unloading, ///< keep-alive expired; weights being torn down
    Reclaimed,
};

/** Role under prefill-decode disaggregation (Unified otherwise). */
enum class InstanceRole { Unified, PrefillOnly, DecodeOnly };

class Instance
{
  public:
    Instance(InstanceId id, ModelId modelId, const ModelSpec &model,
             Partition *primary, HardwareSpec execSpec, Bytes kvAlloc);

    const InstanceId id;
    const ModelId modelId;
    const ModelSpec model;
    Partition *const primary;
    /** Extra partitions held exclusively (TP or full-node deployments). */
    std::vector<Partition *> extraHolds;
    /** The hardware view iterations execute with (may be TP-combined). */
    const HardwareSpec execSpec;

    InstanceState state = InstanceState::Loading;
    InstanceRole role = InstanceRole::Unified;
    /**
     * Nonzero while an intervention drain (node failure, redeploy,
     * retirement) waits for an executing memory op before unloading.
     * Admission paths skip draining instances so the drain sweep
     * never races new placements. A bitmask of the controller's
     * kDrain* origin bits rather than a bool: a node restore clears
     * only the node-failure bit, so an instance a concurrent
     * redeploy/retire sweep is draining stays fenced.
     */
    unsigned draining = 0;

    /** Admitted requests whose prefill has not run yet. */
    std::vector<Request *> prefillQueue;
    /** Requests in the continuous decode batch. */
    std::vector<Request *> decodeBatch;

    PagedKvCache kv;
    /** True while a KV resize blocks this instance's iterations. */
    bool resizeInFlight = false;
    /** The allocation the latest committed resize will end at. */
    Bytes kvTarget = 0;
    /** Static allocation (baselines / exclusive fallback): the KV is
     *  sized once at creation and never resized. */
    bool staticKv = false;
    /** Bytes held directly on the primary partition (static path). */
    Bytes heldPrimaryBytes = 0;
    /**
     * True once the instance's memory (weights + initial KV) is
     * physically held on the partition. A cold-start load parked in
     * the reservation station is not yet resident; KV resizes must not
     * execute before residency (the pending load reads the latest KV
     * target when it finally executes).
     */
    bool memResident = false;

    Seconds createdAt = 0.0;
    Seconds activeAt = -1.0;
    Seconds reclaimedAt = -1.0;
    /** Cold-start duration (grace window for requests it admits). */
    Seconds loadDuration = 0.0;
    EventHandle keepAliveEv;

    /** Cumulative seconds spent executing iterations (stats). */
    Seconds busyTime = 0.0;
    /** Cumulative seconds blocked on KV resizes (Fig. 31). */
    Seconds scalingTime = 0.0;
    /** Decode tokens produced (stats). */
    Tokens decodedTokens = 0;

    /** Decode batch size ("bs" in the paper's consolidation figures). */
    int batchSize() const
    {
        return static_cast<int>(decodeBatch.size());
    }

    /** All requests currently owned (prefill queue + decode batch). */
    int loadSize() const
    {
        return static_cast<int>(prefillQueue.size() + decodeBatch.size());
    }

    /** Sum of context lengths across the decode batch. */
    Tokens totalContext() const;

    /** Average context length of the decode batch (>= 1). */
    Tokens avgContextLen() const;

    /** True when the instance can run an iteration right now. */
    bool runnable() const;

    /**
     * The most urgent request (minimum headroom). Sets `is_prefill` to
     * true when that request still awaits its prefill. Returns nullptr
     * when the instance has no requests.
     */
    Request *mostUrgent(Seconds now, bool &is_prefill) const;

    /** Minimum headroom across all owned requests (+inf when empty). */
    Seconds minHeadroom(Seconds now) const;

    /** Remove a request from whichever queue holds it. */
    void removeRequest(Request *req);
};

} // namespace slinfer

#endif // SLINFER_ENGINE_INSTANCE_HH
