/**
 * @file
 * Paged KV-cache accounting for one instance.
 *
 * Mirrors vLLM's paged-attention allocator at the accounting level:
 * space is granted in fixed-size blocks of tokens, usage is tracked in
 * tokens, and the allocation (capacity) can be resized, which in the
 * real engine means allocating new block tensors and copying live pages
 * (the latency of that is modeled by MemCostModel and orchestrated by
 * the memory subsystem — this class only tracks the book-keeping).
 */

#ifndef SLINFER_ENGINE_KV_CACHE_HH
#define SLINFER_ENGINE_KV_CACHE_HH

#include "common/types.hh"

namespace slinfer
{

class PagedKvCache
{
  public:
    /** Tokens per block, vLLM's default. */
    static constexpr Tokens kBlockTokens = 16;

    PagedKvCache(Bytes bytesPerToken, Bytes allocBytes);

    Bytes bytesPerToken() const { return bytesPerToken_; }
    Bytes allocBytes() const { return allocBytes_; }
    Tokens capacityTokens() const;
    Tokens usedTokens() const { return usedTokens_; }
    Bytes usedBytes() const;
    /** Fraction of the allocation occupied by live tokens. */
    double utilization() const;

    /** Tokens of block-rounded footprint for a context of `len`. */
    static Tokens roundedTokens(Tokens len);

    /** True if `extra` more tokens fit (block-rounded). */
    bool canFit(Tokens extra) const;

    /**
     * Reserve `tokens` more tokens; returns false (and reserves
     * nothing) on overflow.
     */
    bool reserve(Tokens tokens);

    /** Release `tokens` previously reserved. */
    void release(Tokens tokens);

    /** Change the allocation size (book-keeping only). */
    void setAllocBytes(Bytes bytes);

  private:
    Bytes bytesPerToken_;
    Bytes allocBytes_;
    Tokens usedTokens_ = 0;
};

} // namespace slinfer

#endif // SLINFER_ENGINE_KV_CACHE_HH
