/**
 * @file
 * Cluster nodes and partitions.
 *
 * A Node is one physical CPU or GPU server. Normally it has a single
 * Partition spanning all of its resources; the `sllm+c+s` baseline
 * statically splits each node into two half-partitions (the paper's
 * time-sharing baseline). Instances live on exactly one *primary*
 * partition; exclusive deployments (tensor-parallel 34B, or 13B-on-CPU
 * under the half-partition baseline) may additionally hold other
 * partitions, blocking colocation there.
 */

#ifndef SLINFER_ENGINE_NODE_HH
#define SLINFER_ENGINE_NODE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/memory_manager.hh"
#include "hw/hardware_spec.hh"

namespace slinfer
{

class Instance;

/** One schedulable resource slice (whole node or static half). */
struct Partition
{
    Partition(NodeId node, int index, HardwareSpec spec);

    NodeId node;
    int index;
    HardwareSpec spec;
    MemoryManager mem;

    /** Instances whose primary residence is this partition. */
    std::vector<Instance *> instances;
    /** Instance holding this partition exclusively (nullptr if none). */
    Instance *exclusiveHolder = nullptr;
    /** True while an iteration is executing on this partition. */
    bool busy = false;
    /**
     * Fenced by a node-failure intervention: closed for placement and
     * absent from the free-capacity index until restored
     * (ControllerBase::failNode / restoreNode).
     */
    bool failed = false;
    /**
     * Straggler multiplier applied to every perf-model iteration
     * latency executed here (node-degrade intervention;
     * ControllerBase::degradeNode). 1.0 is healthy — the multiply by
     * exactly 1.0 is bit-exact, so undegraded runs are unchanged.
     */
    double perfFactor = 1.0;
    /**
     * Sim time of the most recent node-failure that fenced this
     * partition; < 0 if it never failed. Read by the failover
     * exclusion policy (ResilienceConfig::failoverExclusion) to keep
     * placements off recently failed hardware.
     */
    Seconds lastFailedAt = -1.0;

    /**
     * Running optimistic budget: weights + committed KV target of
     * every non-Unloading/non-Reclaimed resident, maintained
     * incrementally by ClusterIndex at instance registration, KV
     * target changes and unload transitions (the oracle scan it
     * mirrors is MemorySubsystem::committedScan). Integer arithmetic,
     * so the running value is exactly the scan's value.
     */
    Bytes committedBytes = 0;
    /** Position in the controller's canonical cpu-first partition
     *  view; doubles as the free-capacity index tie-breaker so the
     *  indexed placement walk visits equal-free partitions in the
     *  same order as the oracle scan. */
    std::uint32_t viewPos = 0;

    /** Whether a new instance of another model may be placed here. */
    bool openForPlacement() const;

    /**
     * Bytes actually in use: resident weights plus live KV pages of
     * the hosted instances. This is the utilization the paper plots
     * (allocations can be much larger, e.g. the baselines pin whole
     * nodes).
     */
    Bytes liveBytes() const;
};

class Node
{
  public:
    Node(NodeId id, const HardwareSpec &spec, int numPartitions);

    NodeId id() const { return id_; }
    const HardwareSpec &spec() const { return spec_; }
    bool isCpu() const { return spec_.kind == HwKind::Cpu; }

    std::vector<std::unique_ptr<Partition>> &partitions()
    {
        return parts_;
    }
    const std::vector<std::unique_ptr<Partition>> &partitions() const
    {
        return parts_;
    }

    /** True if any partition hosts a live instance. */
    bool inUse() const;

    /** True while fenced by a node-failure intervention. */
    bool failed() const;
    /** Fence / reopen every partition (index updates are the
     *  controller's job; see ControllerBase::failNode). */
    void setFailed(bool failed);

    /** Physical bytes used across partitions. */
    Bytes memUsed() const;
    Bytes memCapacity() const;

  private:
    NodeId id_;
    HardwareSpec spec_;
    std::vector<std::unique_ptr<Partition>> parts_;
};

} // namespace slinfer

#endif // SLINFER_ENGINE_NODE_HH
