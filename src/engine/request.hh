/**
 * @file
 * An inference request and its SLO bookkeeping.
 *
 * The paper defines urgency through *headroom* (Eq. 1):
 *     headroom = ST + TTFT_SLO + TPOT_SLO * O - CT
 * i.e. the absolute deadline of the next token is cumulative in the
 * number of generated tokens. A request meets its SLO iff every token
 * (including the first) was emitted with non-negative headroom; requests
 * served by a cold-started instance get a TTFT grace window equal to the
 * cold-start duration.
 */

#ifndef SLINFER_ENGINE_REQUEST_HH
#define SLINFER_ENGINE_REQUEST_HH

#include "common/types.hh"

namespace slinfer
{

enum class RequestState
{
    Queued,      ///< waiting for admission to an instance
    Prefill,     ///< admitted; waiting for / running its prefill
    Decode,      ///< in a decode batch
    Transfer,    ///< KV in flight between instances (PD disaggregation)
    Completed,
    Dropped,     ///< queueing exceeded the TTFT SLO (proactive drop)
};

/** Stable lowercase name of a lifecycle state; trace spans use these
 *  as step names so the flight recorder and the enum cannot drift. */
inline const char *
requestStateName(RequestState s)
{
    switch (s) {
    case RequestState::Queued:
        return "queued";
    case RequestState::Prefill:
        return "prefill";
    case RequestState::Decode:
        return "decode";
    case RequestState::Transfer:
        return "transfer";
    case RequestState::Completed:
        return "completed";
    case RequestState::Dropped:
        return "dropped";
    }
    return "?";
}

/** Request::poolSlot value for storage not owned by a replay pool. */
inline constexpr std::uint32_t kRequestNotPooled = 0xFFFFFFFFu;

struct Request
{
    RequestId id = 0;
    ModelId model = 0;
    Seconds arrival = 0.0;
    Tokens inputLen = 0;
    Tokens targetOutput = 1;

    Seconds ttftSlo = 0.0;
    Seconds tpotSlo = 0.25;
    /** Cold-start grace added to the TTFT deadline. */
    Seconds grace = 0.0;

    RequestState state = RequestState::Queued;
    Tokens generated = 0;
    Seconds firstTokenTime = -1.0;
    Seconds completionTime = -1.0;
    /** True once any token missed its cumulative deadline. */
    bool sloViolated = false;
    /** Times the request was evicted/migrated between instances. */
    int migrations = 0;
    /** Instance currently responsible (0 = none). */
    InstanceId instance = 0;
    /** KV tokens currently reserved for this request (block-rounded). */
    Tokens kvReserved = 0;
    /** Consecutive failed dispatch attempts since the last admission
     *  (resilience backoff; ResilienceConfig::backoff). */
    int dispatchFailures = 0;
    /** Earliest sim time the next dispatch attempt is permitted under
     *  backoff; attempts before this park the request instead of
     *  charging a retry. <= now means "try immediately". */
    Seconds retryAfter = 0.0;
    /** Live references from controller pending queues (pending_ /
     *  pendingDecode_ entries, including ghost entries awaiting their
     *  lazy purge). A settled request may only be recycled by the
     *  streaming replay pool once this reaches zero. */
    std::uint32_t queueRefs = 0;
    /** kRequestNotPooled for materialized / injected requests; any
     *  other value marks storage owned by the streaming replay pool
     *  (eligible for recycling once settled and unreferenced). */
    std::uint32_t poolSlot = 0xFFFFFFFFu;

    /** Absolute deadline of the next token (Eq. 1). */
    Seconds deadlineForNextToken() const;

    /** Headroom at time `now`; negative means the SLO is already lost. */
    Seconds headroom(Seconds now) const;

    /** Input plus generated tokens (KV footprint in tokens). */
    Tokens contextLen() const { return inputLen + generated; }

    /** True once all target tokens are out. */
    bool finishedGenerating() const { return generated >= targetOutput; }

    /**
     * Record a token emission at time `t`, updating violation state.
     * Returns the headroom the token had.
     */
    Seconds noteToken(Seconds t);
};

} // namespace slinfer

#endif // SLINFER_ENGINE_REQUEST_HH
