#include "hw/memcost_model.hh"

#include "common/units.hh"

namespace slinfer
{

namespace
{

// Fitted to Fig. 17: 32 GB -> 64 GB takes 1.9 s => 1.9 / 64 s/GB up;
// 32 GB -> 16 GB takes 0.3 s => 0.3 / 16 s/GB down. Vendor GB (1e9).
constexpr double kUpSecondsPerByte = 1.9 / 64e9;
constexpr double kDownSecondsPerByte = 0.3 / 16e9;
constexpr Seconds kResizeFixed = 0.01;

// Fixed engine re-initialization on cold start beyond raw copy.
constexpr Seconds kLoadFixed = 0.10;
constexpr Seconds kUnloadFixed = 0.05;

// 100 Gbps = 12.5 GB/s, plus a fixed RTT/setup cost.
constexpr double kFabricBytesPerSecond = 12.5e9;
constexpr Seconds kFabricFixed = 0.002;

} // namespace

Seconds
MemCostModel::kvResizeTime(const HardwareSpec &hw, Bytes oldBytes,
                           Bytes newBytes)
{
    if (oldBytes == newBytes)
        return 0.0;
    double slope =
        newBytes > oldBytes ? kUpSecondsPerByte : kDownSecondsPerByte;
    return (kResizeFixed + slope * static_cast<double>(newBytes)) *
           hw.kvScaleCostFactor;
}

Seconds
MemCostModel::weightLoadTime(const HardwareSpec &hw, const ModelSpec &m)
{
    return kLoadFixed + static_cast<double>(m.weightBytes()) /
                            hw.weightLoadBandwidth;
}

Seconds
MemCostModel::weightUnloadTime(const HardwareSpec &hw, const ModelSpec &m)
{
    (void)hw;
    (void)m;
    return kUnloadFixed;
}

Seconds
MemCostModel::kvMigrationTime(Bytes bytes)
{
    return kFabricFixed + static_cast<double>(bytes) / kFabricBytesPerSecond;
}

} // namespace slinfer
