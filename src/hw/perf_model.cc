#include "hw/perf_model.hh"

#include <algorithm>

#include "common/log.hh"

namespace slinfer
{

Seconds
PerfModel::prefillTime(const HardwareSpec &hw, const ModelSpec &m,
                       Tokens inputLen)
{
    if (inputLen <= 0)
        panic("prefillTime: non-positive input length");
    double flops = m.flopsPerToken() * static_cast<double>(inputLen) +
                   m.attnFlops(inputLen);
    double t_compute = flops / (hw.peakFlops * hw.effPrefill);
    double t_mem = static_cast<double>(m.weightBytes()) / hw.effectiveBw();
    return std::max(t_compute, t_mem) + hw.prefillOverhead;
}

Seconds
PerfModel::decodeTime(const HardwareSpec &hw, const ModelSpec &m,
                      int batchSize, Tokens avgLen)
{
    if (batchSize <= 0)
        panic("decodeTime: non-positive batch size");
    avgLen = std::max<Tokens>(avgLen, 1);
    double kv_bytes = static_cast<double>(batchSize) *
                      static_cast<double>(avgLen) *
                      static_cast<double>(m.kvBytesPerToken());
    // KV reads may be served by auxiliary (CPU-offload) bandwidth in
    // parallel with device memory (the NEO baseline); weights always
    // stream from device memory.
    double t_mem =
        static_cast<double>(m.weightBytes()) / hw.effectiveBw() +
        kv_bytes / (hw.effectiveBw() + hw.auxKvBandwidth);
    double t_compute = static_cast<double>(batchSize) * m.flopsPerToken() /
                       (hw.peakFlops * hw.effDecodeCompute);
    return t_mem + t_compute + hw.iterOverhead +
           static_cast<double>(batchSize) * hw.perRequestOverhead;
}

int
PerfModel::maxBatchWithinTpot(const HardwareSpec &hw, const ModelSpec &m,
                              Tokens avgLen, Seconds tpotSlo)
{
    if (decodeTime(hw, m, 1, avgLen) > tpotSlo)
        return 0;
    // Decode time is monotone in batch size; binary search the boundary.
    int lo = 1;
    int hi = 2;
    while (hi < 1 << 16 && decodeTime(hw, m, hi, avgLen) <= tpotSlo) {
        lo = hi;
        hi *= 2;
    }
    while (lo + 1 < hi) {
        int mid = (lo + hi) / 2;
        if (decodeTime(hw, m, mid, avgLen) <= tpotSlo)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

HardwareSpec
PerfModel::tensorParallel(const HardwareSpec &hw, int tpDegree)
{
    if (tpDegree <= 1)
        return hw;
    // All-reduce after every layer costs efficiency; NVLink-class links
    // keep the penalty modest for TP=2.
    const double comm_eff = 0.85;
    HardwareSpec out = hw;
    out.name = hw.name + " xTP" + std::to_string(tpDegree);
    out.peakFlops *= tpDegree * comm_eff;
    out.memBandwidth *= tpDegree * comm_eff;
    out.memCapacity *= tpDegree;
    return out;
}

} // namespace slinfer
