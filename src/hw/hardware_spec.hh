/**
 * @file
 * Hardware catalog: CPU and GPU node types with the peak rates and
 * efficiency factors used by the roofline performance model.
 *
 * Efficiency factors are calibrated so the model reproduces the paper's
 * published latencies (Table I and Figs. 6-8); see perf_model.cc and the
 * hw unit tests for the calibration targets.
 */

#ifndef SLINFER_HW_HARDWARE_SPEC_HH
#define SLINFER_HW_HARDWARE_SPEC_HH

#include <string>

#include "common/types.hh"

namespace slinfer
{

/** Broad device class. */
enum class HwKind { Cpu, Gpu };

/**
 * Static description of one node type.
 */
struct HardwareSpec
{
    std::string name;
    HwKind kind = HwKind::Gpu;
    /** Peak BF16 matrix throughput, FLOP/s. */
    double peakFlops = 0.0;
    /** Peak memory bandwidth, bytes/s. */
    double memBandwidth = 0.0;
    /** Memory capacity available for weights + KV-cache. */
    Bytes memCapacity = 0;
    /** Physical cores (CPU) or host cores (GPU node). */
    int cores = 0;
    /** True when the CPU has a matrix acceleration block (AMX). */
    bool hasMatrixAccel = true;
    /** Sustained bandwidth of the ServerlessLLM-style weight loader. */
    double weightLoadBandwidth = 14e9;

    /** Fraction of peakFlops achieved during prefill GEMMs. */
    double effPrefill = 0.5;
    /** Fraction of peakFlops achieved by decode-stage GEMV/GEMM. */
    double effDecodeCompute = 0.3;
    /** Fraction of memBandwidth achieved by streaming reads. */
    double effMemBw = 0.65;
    /** Fixed per-iteration launch/framework overhead, seconds. */
    Seconds iterOverhead = 1e-3;
    /** Additional per-batched-request overhead per decode step. */
    Seconds perRequestOverhead = 0.0;
    /** Fixed prefill overhead (tokenization, graph dispatch). */
    Seconds prefillOverhead = 0.0;
    /** Multiplier on the KV-resize cost model (GPU = 1.0). */
    double kvScaleCostFactor = 1.0;

    /**
     * CPU-assisted decoding (the NEO baseline): extra bandwidth that
     * serves KV-cache reads in parallel with device memory, and extra
     * host-DRAM KV capacity. Zero for ordinary nodes.
     */
    double auxKvBandwidth = 0.0;
    Bytes auxKvCapacity = 0;

    /** Effective streaming bandwidth, bytes/s. */
    double effectiveBw() const { return memBandwidth * effMemBw; }
};

/** 3rd-Gen Xeon 8369B, 32 cores @2.7 GHz, no AMX (Table I). */
HardwareSpec xeon8369b();
/** 4th-Gen Xeon 6462C, 32 cores @3.3 GHz, AMX (the paper's CPU node). */
HardwareSpec xeon6462c();
/** 6th-Gen Xeon, 96 cores, AMX (the paper's forward-looking Discussion). */
HardwareSpec xeon6_96c();
/** NVIDIA A100-80GB (the paper's GPU node). */
HardwareSpec a100_80g();

/**
 * A static fraction of a node (the `sllm+c+s` baseline splits nodes in
 * half). Scales compute, bandwidth, capacity and cores; keeps
 * efficiencies and overheads.
 */
HardwareSpec scaledPartition(const HardwareSpec &base, double fraction);

} // namespace slinfer

#endif // SLINFER_HW_HARDWARE_SPEC_HH
