/**
 * @file
 * Model catalog: the architectural parameters of the LLMs the paper
 * evaluates, from which weight size, KV-cache size per token and the
 * FLOP counts used by the roofline performance model are derived.
 */

#ifndef SLINFER_HW_MODEL_SPEC_HH
#define SLINFER_HW_MODEL_SPEC_HH

#include <string>

#include "common/types.hh"

namespace slinfer
{

/** Size class used for the baselines' per-model concurrency caps. */
enum class ModelClass { Small3B, Mid7B, Mid8B, Large13B, Huge22B, Huge34B };

/**
 * Static description of one LLM.
 */
struct ModelSpec
{
    std::string name;
    ModelClass klass = ModelClass::Mid7B;
    /** Total parameter count. */
    double params = 0.0;
    /** Transformer layer count. */
    int numLayers = 0;
    /** Hidden (model) dimension. */
    int hiddenDim = 0;
    /** KV bytes per token per layer (both K and V, all kv heads). */
    Bytes kvBytesPerLayerToken = 0;
    /** Bytes per weight parameter (2 for fp16/bf16, 0.5 for INT4). */
    double bytesPerParam = 2.0;
    /** Maximum context length the model supports. */
    Tokens maxContext = 4096;
    /** Tensor-parallel degree when deployed on GPUs (34B uses 2). */
    int tpDegree = 1;

    /** Total bytes of model weights. */
    Bytes weightBytes() const;

    /** KV-cache bytes for one token across all layers. */
    Bytes kvBytesPerToken() const;

    /** Linear-term FLOPs to process one token (2 * params). */
    double flopsPerToken() const;

    /**
     * Quadratic attention FLOPs for a prefill of length L:
     * 4 * layers * hidden * L^2 (QK^T plus attention-value matmuls).
     */
    double attnFlops(Tokens len) const;
};

/** Llama-3.2-3B (28 layers, 3072 dim, GQA-8). */
ModelSpec llama32_3b();
/** Llama-2-7B (32 layers, 4096 dim, MHA). */
ModelSpec llama2_7b();
/** Llama-3.1-8B (32 layers, 4096 dim, GQA-8, 32k context). */
ModelSpec llama31_8b();
/** Llama-2-13B (40 layers, 5120 dim, MHA). */
ModelSpec llama2_13b();
/** Codestral-22B (56 layers, 6144 dim, GQA-8). */
ModelSpec codestral_22b();
/** CodeLlama-34B (48 layers, 8192 dim, GQA-8, TP=2 on GPUs). */
ModelSpec codellama_34b();

/** Derive an INT4-quantized variant (weights shrink 4x; KV unchanged). */
ModelSpec quantized(ModelSpec base, int bits);

/**
 * Look up a built-in preset by display name ("Llama-2-7B") or kebab
 * slug ("llama2-7b"); false on unknown names. Timeline `model-deploy`
 * entries name their spec this way.
 */
bool tryModelPreset(const std::string &name, ModelSpec &out);

/** Short human name of a model class (for tables). */
const char *modelClassName(ModelClass klass);

} // namespace slinfer

#endif // SLINFER_HW_MODEL_SPEC_HH
