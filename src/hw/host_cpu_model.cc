#include "hw/host_cpu_model.hh"

#include <algorithm>
#include <cmath>

namespace slinfer
{

double
HostCpuModel::coreUsage(int batchSize)
{
    int b = std::max(batchSize, 1);
    // One busy-waiting engine thread (~0.55 core at batch 1) plus a
    // logarithmically growing sampling/detokenization share, capped
    // just below one core (Fig. 10 never exceeds one core).
    double usage = 0.55 + 0.055 * std::log2(static_cast<double>(b) + 1.0);
    return std::min(usage, 0.98);
}

double
HostCpuModel::stressSlowdown(int stressProcs, int hostCores)
{
    if (stressProcs <= 0 || hostCores <= 0)
        return 1.0;
    // Calibrated: 64 stress processes on 32 cores cost 4% (Fig. 11).
    double pressure = static_cast<double>(stressProcs) /
                      static_cast<double>(2 * hostCores);
    return 1.0 + 0.04 * std::min(pressure, 1.0);
}

double
HostCpuModel::colocatedCoreUsage(int colocated)
{
    int n = std::max(colocated, 1);
    // Instances take turns on the GPU: only one busy-waits at full rate
    // at a time; the rest idle on the scheduler. Fig. 28: ~0.65 core for
    // one instance, slightly above one core at eight.
    return 0.60 + 0.07 * n + preprocessingCores() * n;
}

double
HostCpuModel::preprocessingCores()
{
    return 0.01;
}

} // namespace slinfer
