/**
 * @file
 * Roofline performance model: iteration latency as a function of
 * (hardware, model, input length, batch size, average context length).
 *
 * Prefill: max(compute, weight-streaming) + fixed overhead, where the
 * compute term includes the quadratic attention FLOPs.
 *
 * Decode (one token for every request in a batch of size B with average
 * context length L):
 *     (weights + B * L * kv_per_token) / effective_bandwidth
 *   + B * flops_per_token / (peak * eff_decode)
 *   + iter_overhead + B * per_request_overhead
 * The weights are read once per iteration regardless of B, which is why
 * batching is sub-linear (paper Fig. 7).
 *
 * Calibration: the hw unit tests assert that this model reproduces the
 * paper's Table I (Llama-2-7B on 3rd/4th-gen Xeon) within 10%.
 */

#ifndef SLINFER_HW_PERF_MODEL_HH
#define SLINFER_HW_PERF_MODEL_HH

#include "hw/hardware_spec.hh"
#include "hw/model_spec.hh"

namespace slinfer
{

/**
 * Pure (deterministic) latency model. Ground-truth execution multiplies
 * these by lognormal noise in the engine; SLINFER's quantifier only sees
 * sampled grid points of this model.
 */
class PerfModel
{
  public:
    /** Time of a prefill iteration over `inputLen` tokens. */
    static Seconds prefillTime(const HardwareSpec &hw, const ModelSpec &m,
                               Tokens inputLen);

    /**
     * Time of one decode iteration for a batch of `batchSize` requests
     * whose average context (input + generated) length is `avgLen`.
     */
    static Seconds decodeTime(const HardwareSpec &hw, const ModelSpec &m,
                              int batchSize, Tokens avgLen);

    /**
     * Largest batch size whose decode iteration stays within
     * `tpotSlo` at average length `avgLen`; 0 when even batch 1 misses.
     */
    static int maxBatchWithinTpot(const HardwareSpec &hw,
                                  const ModelSpec &m, Tokens avgLen,
                                  Seconds tpotSlo);

    /**
     * Effective spec for a tensor-parallel deployment over `tpDegree`
     * devices: aggregated compute/bandwidth with a communication
     * efficiency penalty.
     */
    static HardwareSpec tensorParallel(const HardwareSpec &hw,
                                       int tpDegree);
};

} // namespace slinfer

#endif // SLINFER_HW_PERF_MODEL_HH
