/**
 * @file
 * Memory-operation cost model: KV-cache resize latency (paper Fig. 17),
 * weight load/unload latency (ServerlessLLM-style loader, §IX-A), and
 * cross-node KV migration over the 100 Gbps fabric (§IX-G).
 *
 * The resize model is linear in the size of the *new* allocation with
 * separate slopes for scale-up and scale-down, fitted to the paper's
 * two published points: on the GPU, scaling a 32 GB cache up to 64 GB
 * takes 1.9 s and down to 16 GB takes 0.3 s.
 */

#ifndef SLINFER_HW_MEMCOST_MODEL_HH
#define SLINFER_HW_MEMCOST_MODEL_HH

#include "hw/hardware_spec.hh"
#include "hw/model_spec.hh"

namespace slinfer
{

class MemCostModel
{
  public:
    /** Latency of resizing a paged KV cache from `oldBytes` to
     *  `newBytes` on the given hardware. */
    static Seconds kvResizeTime(const HardwareSpec &hw, Bytes oldBytes,
                                Bytes newBytes);

    /** Cold-start weight load (checkpoint already cached in host DRAM). */
    static Seconds weightLoadTime(const HardwareSpec &hw,
                                  const ModelSpec &m);

    /** Tear-down / unload latency when reclaiming an instance. */
    static Seconds weightUnloadTime(const HardwareSpec &hw,
                                    const ModelSpec &m);

    /** Transfer time of `bytes` of KV state across the 100 Gbps fabric. */
    static Seconds kvMigrationTime(Bytes bytes);
};

} // namespace slinfer

#endif // SLINFER_HW_MEMCOST_MODEL_HH
