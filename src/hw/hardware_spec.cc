#include "hw/hardware_spec.hh"

#include "common/units.hh"

namespace slinfer
{

HardwareSpec
xeon8369b()
{
    HardwareSpec hw;
    hw.name = "Xeon-8369B (3rd Gen)";
    hw.kind = HwKind::Cpu;
    hw.peakFlops = 13e12;            // BF16 via AVX-512, no AMX
    hw.memBandwidth = 204e9;         // 8ch DDR4-3200
    hw.memCapacity = 256 * kGiB;
    hw.cores = 32;
    hw.hasMatrixAccel = false;
    hw.weightLoadBandwidth = 20e9;   // DRAM-to-DRAM mapping
    hw.effPrefill = 0.268;           // calibrated: Table I row 1
    hw.effDecodeCompute = 0.30;
    hw.effMemBw = 0.70;              // 143 GB/s effective
    hw.iterOverhead = ms(1.0);
    hw.perRequestOverhead = ms(0.8);
    hw.prefillOverhead = ms(20.0);
    hw.kvScaleCostFactor = 0.5;
    return hw;
}

HardwareSpec
xeon6462c()
{
    HardwareSpec hw;
    hw.name = "Xeon-6462C (4th Gen, AMX)";
    hw.kind = HwKind::Cpu;
    hw.peakFlops = 105e12;           // AMX BF16 (paper Discussion)
    hw.memBandwidth = 307e9;         // 8ch DDR5-4800
    hw.memCapacity = 256 * kGiB;
    hw.cores = 32;
    hw.hasMatrixAccel = true;
    hw.weightLoadBandwidth = 20e9;
    hw.effPrefill = 0.225;           // calibrated: Table I row 2
    hw.effDecodeCompute = 0.30;
    hw.effMemBw = 0.65;              // 200 GB/s effective
    hw.iterOverhead = ms(1.0);
    hw.perRequestOverhead = ms(0.8);
    hw.prefillOverhead = ms(20.0);
    hw.kvScaleCostFactor = 0.5;
    return hw;
}

HardwareSpec
xeon6_96c()
{
    HardwareSpec hw = xeon6462c();
    hw.name = "Xeon-6 (6th Gen, 96c, AMX)";
    hw.peakFlops = 297e12;           // paper Discussion
    hw.memBandwidth = 614e9;         // 12ch DDR5 MCR
    hw.memCapacity = 512 * kGiB;
    hw.cores = 96;
    return hw;
}

HardwareSpec
a100_80g()
{
    HardwareSpec hw;
    hw.name = "A100-80GB";
    hw.kind = HwKind::Gpu;
    hw.peakFlops = 312e12;           // BF16 tensor core
    hw.memBandwidth = 2039e9;        // HBM2e
    hw.memCapacity = 80ULL * 1000 * 1000 * 1000; // vendor GB
    hw.cores = 32;                   // host cores on the GPU node
    hw.hasMatrixAccel = true;
    hw.weightLoadBandwidth = 14e9;   // sllm fast loader (~1 s for 7B)
    hw.effPrefill = 0.45;
    hw.effDecodeCompute = 0.50;
    hw.effMemBw = 0.65;              // ~1.3 TB/s effective
    hw.iterOverhead = ms(1.0);
    hw.perRequestOverhead = ms(0.05);
    hw.prefillOverhead = ms(5.0);
    hw.kvScaleCostFactor = 1.0;
    return hw;
}

HardwareSpec
scaledPartition(const HardwareSpec &base, double fraction)
{
    HardwareSpec hw = base;
    hw.name = base.name + " x" + std::to_string(fraction);
    hw.peakFlops *= fraction;
    hw.memBandwidth *= fraction;
    hw.memCapacity = static_cast<Bytes>(hw.memCapacity * fraction);
    hw.cores = static_cast<int>(hw.cores * fraction);
    return hw;
}

} // namespace slinfer
