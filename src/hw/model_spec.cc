#include "hw/model_spec.hh"

#include "common/flat_hash.hh"
#include "common/log.hh"

namespace slinfer
{

Bytes
ModelSpec::weightBytes() const
{
    return static_cast<Bytes>(params * bytesPerParam);
}

Bytes
ModelSpec::kvBytesPerToken() const
{
    return kvBytesPerLayerToken * static_cast<Bytes>(numLayers);
}

double
ModelSpec::flopsPerToken() const
{
    return 2.0 * params;
}

double
ModelSpec::attnFlops(Tokens len) const
{
    double l = static_cast<double>(len);
    return 4.0 * numLayers * hiddenDim * l * l;
}

namespace
{

/** KV bytes per layer-token: 2 (K and V) * kv_dim * 2 bytes (fp16). */
Bytes
kvLayerBytes(int kv_heads, int head_dim)
{
    return static_cast<Bytes>(2 * kv_heads * head_dim * 2);
}

} // namespace

ModelSpec
llama32_3b()
{
    ModelSpec m;
    m.name = "Llama-3.2-3B";
    m.klass = ModelClass::Small3B;
    m.params = 3.2e9;
    m.numLayers = 28;
    m.hiddenDim = 3072;
    m.kvBytesPerLayerToken = kvLayerBytes(8, 128);
    m.maxContext = 4096;
    return m;
}

ModelSpec
llama2_7b()
{
    ModelSpec m;
    m.name = "Llama-2-7B";
    m.klass = ModelClass::Mid7B;
    m.params = 6.7e9;
    m.numLayers = 32;
    m.hiddenDim = 4096;
    m.kvBytesPerLayerToken = kvLayerBytes(32, 128);
    m.maxContext = 4096;
    return m;
}

ModelSpec
llama31_8b()
{
    ModelSpec m;
    m.name = "Llama-3.1-8B";
    m.klass = ModelClass::Mid8B;
    m.params = 8.0e9;
    m.numLayers = 32;
    m.hiddenDim = 4096;
    m.kvBytesPerLayerToken = kvLayerBytes(8, 128);
    m.maxContext = 32768;
    return m;
}

ModelSpec
llama2_13b()
{
    ModelSpec m;
    m.name = "Llama-2-13B";
    m.klass = ModelClass::Large13B;
    m.params = 13.0e9;
    m.numLayers = 40;
    m.hiddenDim = 5120;
    m.kvBytesPerLayerToken = kvLayerBytes(40, 128);
    m.maxContext = 4096;
    return m;
}

ModelSpec
codestral_22b()
{
    ModelSpec m;
    m.name = "Codestral-22B";
    m.klass = ModelClass::Huge22B;
    m.params = 22.2e9;
    m.numLayers = 56;
    m.hiddenDim = 6144;
    m.kvBytesPerLayerToken = kvLayerBytes(8, 128);
    m.maxContext = 4096;
    return m;
}

ModelSpec
codellama_34b()
{
    ModelSpec m;
    m.name = "CodeLlama-34B";
    m.klass = ModelClass::Huge34B;
    m.params = 33.7e9;
    m.numLayers = 48;
    m.hiddenDim = 8192;
    m.kvBytesPerLayerToken = kvLayerBytes(8, 128);
    m.maxContext = 4096;
    m.tpDegree = 2;
    return m;
}

ModelSpec
quantized(ModelSpec base, int bits)
{
    if (bits != 4 && bits != 8)
        fatal("quantized: only INT4/INT8 supported");
    base.bytesPerParam = bits / 8.0;
    base.name += bits == 4 ? "-INT4" : "-INT8";
    return base;
}

bool
tryModelPreset(const std::string &name, ModelSpec &out)
{
    using MakeFn = ModelSpec (*)();
    // Registered once under both the CLI slug and the spec's display
    // name; every later resolution is one flat-map probe instead of a
    // linear scan that re-built all six specs per call.
    static const FlatHashMap<std::string, MakeFn> registry = [] {
        constexpr std::pair<const char *, MakeFn> presets[] = {
            {"llama32-3b", llama32_3b},   {"llama2-7b", llama2_7b},
            {"llama31-8b", llama31_8b},   {"llama2-13b", llama2_13b},
            {"codestral-22b", codestral_22b},
            {"codellama-34b", codellama_34b},
        };
        FlatHashMap<std::string, MakeFn> reg;
        for (const auto &[slug, make] : presets) {
            reg.emplace(slug, make);
            reg.emplace(make().name, make);
        }
        return reg;
    }();
    const MakeFn *make = registry.find(std::string_view(name));
    if (!make)
        return false;
    out = (*make)();
    return true;
}

const char *
modelClassName(ModelClass klass)
{
    switch (klass) {
      case ModelClass::Small3B: return "3B";
      case ModelClass::Mid7B: return "7B";
      case ModelClass::Mid8B: return "8B";
      case ModelClass::Large13B: return "13B";
      case ModelClass::Huge22B: return "22B";
      case ModelClass::Huge34B: return "34B";
    }
    return "?";
}

} // namespace slinfer
