/**
 * @file
 * Host-CPU usage model for GPU-backed inference (vLLM).
 *
 * The paper's Figs. 10, 11 and 28 are host measurements: vLLM never uses
 * more than about one host core regardless of batch size, suffers only
 * ~4% TPOT loss under 64 background stress processes on 32 cores, and
 * colocating up to eight instances on one GPU keeps total host-CPU usage
 * just above one core. Because we do not run vLLM, we reproduce these
 * characterizations from the explicit analytic model below, documented
 * here as a substitution (see DESIGN.md §6).
 */

#ifndef SLINFER_HW_HOST_CPU_MODEL_HH
#define SLINFER_HW_HOST_CPU_MODEL_HH

#include "common/types.hh"

namespace slinfer
{

class HostCpuModel
{
  public:
    /**
     * Host cores consumed by one vLLM instance actively decoding with
     * the given batch size. Saturates just below one core: the engine is
     * a single Python process busy-waiting on the GPU, plus a slowly
     * growing share for sampling/detokenization.
     */
    static double coreUsage(int batchSize);

    /**
     * TPOT slowdown multiplier when `stressProcs` CPU-bound background
     * processes compete on a host with `hostCores` cores
     * (paper Fig. 11: 64 procs on 32 cores => ~4%).
     */
    static double stressSlowdown(int stressProcs, int hostCores);

    /**
     * Total host cores consumed when `colocated` instances share one GPU
     * (paper Fig. 28: instances take turns on the GPU, so usage grows
     * sub-linearly and stays near one core).
     */
    static double colocatedCoreUsage(int colocated);

    /** Per-instance preprocessing cost, cores (paper: < 0.1 core). */
    static double preprocessingCores();
};

} // namespace slinfer

#endif // SLINFER_HW_HOST_CPU_MODEL_HH
