#include "sweep/summary.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace slinfer
{
namespace sweep
{

std::string
SummaryRow::key() const
{
    return scenario + "|" + system + "|" + overrideName + "|" + overrides;
}

const MetricSummary *
SummaryRow::metric(const std::string &name) const
{
    for (const auto &[n, m] : metrics) {
        if (n == name)
            return &m;
    }
    return nullptr;
}

MetricSummary
bootstrapSummary(const std::vector<double> &samples, std::uint64_t seed,
                 int iters)
{
    MetricSummary out;
    out.n = samples.size();
    if (samples.empty())
        return out;

    CdfBuilder cdf;
    double sum = 0.0;
    for (double x : samples) {
        cdf.add(x);
        sum += x;
    }
    out.mean = sum / static_cast<double>(samples.size());
    out.p50 = cdf.percentile(50.0);
    out.p99 = cdf.percentile(99.0);

    if (samples.size() == 1 || iters <= 0) {
        out.ciLo = out.ciHi = out.mean;
        return out;
    }

    // Percentile bootstrap on the mean: resample n values with
    // replacement `iters` times and take the 2.5/97.5 percentiles of
    // the resampled means.
    Rng rng(seed);
    CdfBuilder means;
    auto n = static_cast<std::int64_t>(samples.size());
    for (int it = 0; it < iters; ++it) {
        double s = 0.0;
        for (std::int64_t k = 0; k < n; ++k)
            s += samples[rng.uniformInt(0, n - 1)];
        means.add(s / static_cast<double>(n));
    }
    out.ciLo = means.percentile(2.5);
    out.ciHi = means.percentile(97.5);
    return out;
}

std::vector<SummaryRow>
summarize(const std::vector<Record> &records, int bootstrapIters)
{
    // Group in first-appearance order; records arrive in grid order, so
    // the summary inherits the grid's determinism.
    std::vector<SummaryRow> rows;
    std::vector<std::vector<const Record *>> groups;
    for (const Record &rec : records) {
        SummaryRow probe;
        probe.scenario = rec.job.scenario;
        probe.system = systemSlug(rec.job.system);
        probe.overrideName = rec.job.overrides.name;
        probe.overrides = rec.job.overrides.canonical();
        std::size_t g = 0;
        for (; g < rows.size(); ++g) {
            if (rows[g].key() == probe.key())
                break;
        }
        if (g == rows.size()) {
            probe.duration = rec.job.duration;
            rows.push_back(std::move(probe));
            groups.emplace_back();
        }
        groups[g].push_back(&rec);
    }

    for (std::size_t g = 0; g < rows.size(); ++g) {
        SummaryRow &row = rows[g];
        row.replicates = groups[g].size();

        // Metric sample vectors: goodput first, then every report
        // scalar, in reportScalarMetrics() order.
        std::vector<std::pair<std::string, std::vector<double>>> samples;
        samples.emplace_back("goodput_rpm", std::vector<double>{});
        for (const Record *rec : groups[g]) {
            double minutes = rec->job.duration > 0
                                 ? rec->job.duration / 60.0
                                 : 1.0;
            samples[0].second.push_back(
                static_cast<double>(rec->report.sloMet) / minutes);
            auto metrics = reportScalarMetrics(rec->report);
            for (std::size_t m = 0; m < metrics.size(); ++m) {
                if (samples.size() <= m + 1)
                    samples.emplace_back(metrics[m].first,
                                         std::vector<double>{});
                samples[m + 1].second.push_back(metrics[m].second);
            }
            // Attribution and resilience metrics exist only on
            // instrumented runs, so they join by name (a mixed group
            // must not shift the positional scalar columns above).
            auto joinByName = [&](const auto &named) {
                for (const auto &[name, value] : named) {
                    std::size_t idx = 0;
                    for (; idx < samples.size(); ++idx) {
                        if (samples[idx].first == name)
                            break;
                    }
                    if (idx == samples.size())
                        samples.emplace_back(name,
                                             std::vector<double>{});
                    samples[idx].second.push_back(value);
                }
            };
            joinByName(reportAttributionMetrics(rec->report));
            joinByName(reportResilienceMetrics(rec->report));
        }

        for (auto &[name, values] : samples) {
            std::uint64_t seed = fnv1aHash(row.key() + "#" + name);
            row.metrics.emplace_back(
                name, bootstrapSummary(values, seed, bootstrapIters));
        }
    }
    return rows;
}

std::string
summaryToJson(const std::vector<SummaryRow> &rows)
{
    std::ostringstream os;
    os.precision(10);
    os << "{\n  \"sweep_summary\": 1,\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SummaryRow &row = rows[i];
        os << "    {\"scenario\": \"" << jsonEscape(row.scenario)
           << "\", \"system\": \"" << jsonEscape(row.system)
           << "\", \"override_name\": \"" << jsonEscape(row.overrideName)
           << "\", \"overrides\": \"" << jsonEscape(row.overrides)
           << "\", \"replicates\": " << row.replicates
           << ", \"duration\": " << row.duration
           << ", \"metrics\": {\n";
        for (std::size_t m = 0; m < row.metrics.size(); ++m) {
            const auto &[name, s] = row.metrics[m];
            os << "      \"" << name << "\": {\"n\": " << s.n
               << ", \"mean\": " << s.mean << ", \"p50\": " << s.p50
               << ", \"p99\": " << s.p99 << ", \"ci_lo\": " << s.ciLo
               << ", \"ci_hi\": " << s.ciHi << "}"
               << (m + 1 < row.metrics.size() ? "," : "") << "\n";
        }
        os << "    }}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

std::string
summaryToCsv(const std::vector<SummaryRow> &rows)
{
    std::ostringstream os;
    os.precision(10);
    os << "scenario,system,override_name,overrides,replicates,duration,"
          "metric,n,mean,p50,p99,ci_lo,ci_hi\n";
    for (const SummaryRow &row : rows) {
        for (const auto &[name, s] : row.metrics) {
            os << csvField(row.scenario) << ',' << csvField(row.system)
               << ',' << csvField(row.overrideName) << ','
               << csvField(row.overrides) << ',' << row.replicates << ','
               << row.duration << ',' << name << ',' << s.n << ','
               << s.mean << ',' << s.p50 << ',' << s.p99 << ','
               << s.ciLo << ',' << s.ciHi << "\n";
        }
    }
    return os.str();
}

bool
summaryFromJson(const std::string &text, std::vector<SummaryRow> &out,
                std::string *err)
{
    JsonValue v;
    if (!parseJson(text, v, err))
        return false;
    const JsonValue *rows = v.find("rows");
    if (!v.isObject() || !rows || !rows->isArray()) {
        if (err)
            *err = "not a sweep summary (missing \"rows\" array)";
        return false;
    }
    for (const JsonValue &rv : rows->array) {
        SummaryRow row;
        row.scenario = rv.string("scenario");
        row.system = rv.string("system");
        row.overrideName = rv.string("override_name");
        row.overrides = rv.string("overrides");
        row.replicates = static_cast<std::size_t>(rv.num("replicates"));
        row.duration = rv.num("duration");
        const JsonValue *metrics = rv.find("metrics");
        if (metrics && metrics->isObject()) {
            for (const auto &[name, mv] : metrics->object) {
                MetricSummary s;
                s.n = static_cast<std::size_t>(mv.num("n"));
                s.mean = mv.num("mean");
                s.p50 = mv.num("p50");
                s.p99 = mv.num("p99");
                s.ciLo = mv.num("ci_lo");
                s.ciHi = mv.num("ci_hi");
                row.metrics.emplace_back(name, s);
            }
        }
        out.push_back(std::move(row));
    }
    return true;
}

} // namespace sweep
} // namespace slinfer
