/**
 * @file
 * Sweep orchestration: declarative experiment grids executed in
 * parallel with resumable on-disk results.
 *
 * A Grid is the cross product scenarios x systems x seeds x override
 * sets. expandGrid() lowers it into an ordered list of JobSpecs, each
 * an independent experiment identified by a stable config hash.
 * runGrid() executes the jobs on a work-stealing pool (pool.hh) —
 * every job builds its own Simulator/Experiment, so nothing mutable
 * crosses threads — streams each finished Report into the ResultStore
 * (store.hh) and returns the records in grid order, so aggregated
 * output is byte-identical no matter how many workers ran or in what
 * order jobs finished. Re-running a grid against the same store skips
 * jobs whose hash is already present (resume-from-partial).
 *
 * Consumers: the slinfer_sweep CLI (tools/), the cross-seed summary
 * (summary.hh) and the perf-regression gate (compare.hh).
 */

#ifndef SLINFER_SWEEP_SWEEP_HH
#define SLINFER_SWEEP_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "metrics/report.hh"

namespace slinfer
{
namespace sweep
{

/**
 * One named set of config overrides applied on top of a scenario's
 * ExperimentConfig. Supported keys: cpu-nodes, gpu-nodes, keep-alive,
 * watermark, overestimate, tpot-slo. Unknown keys are fatal at
 * expansion time, not silently ignored mid-sweep.
 */
struct OverrideSet
{
    /** Label for reports ("" = the scenario's stock config). */
    std::string name;
    /** (key, value) pairs, applied in order. */
    std::vector<std::pair<std::string, std::string>> settings;

    /** Canonical "k=v;k=v" form (stable hashing / storage). */
    std::string canonical() const;
};

/** Parse the canonical "k=v;k=v" form back into settings. */
std::vector<std::pair<std::string, std::string>>
parseOverrideSettings(const std::string &canonical);

/** Non-fatal variant: false + *err on malformed settings. */
bool tryParseOverrideSettings(
    const std::string &canonical,
    std::vector<std::pair<std::string, std::string>> &out,
    std::string *err);

/**
 * Parse a full override spec "name: k=v; k=v" (the name part is
 * optional); used by both the manifest and the CLI --override flag so
 * the two grammars cannot drift. Name and values are trimmed.
 */
bool parseOverrideSpec(const std::string &spec, OverrideSet &out,
                       std::string *err);

/** FNV-1a 64-bit over a string: the sweep subsystem's one stable hash
 *  (job keys in the store, bootstrap seeds in the summary). */
std::uint64_t fnv1aHash(const std::string &s);

/**
 * Parse a seed list — "1,2,3" or a range "1..5" — strictly: every
 * token must be a plain nonnegative integer and a range must be
 * ascending and < 100000 wide. Shared by the manifest and the CLI
 * --seeds flag. False + *err on malformed input.
 */
bool parseSeedList(const std::string &text,
                   std::vector<std::uint64_t> &out, std::string *err);

/** A declarative sweep grid. */
struct Grid
{
    /** Catalog scenario names (scenario/catalog.cc). */
    std::vector<std::string> scenarios;
    std::vector<SystemKind> systems;
    std::vector<std::uint64_t> seeds;
    /** Override sets; empty means one stock-config set. */
    std::vector<OverrideSet> overrides;
};

/**
 * Parse a sweep manifest: `key = value` lines, '#' comments.
 *
 *   scenarios = quickstart, poisson-steady
 *   systems   = slinfer, sllm
 *   seeds     = 1..3            # or 1,2,3
 *   override  = small: cpu-nodes=2; gpu-nodes=2   # repeatable
 *
 * Returns false with a message in *err on malformed input.
 */
bool parseManifest(const std::string &text, Grid &out, std::string *err);

/** One expanded job: a single independent experiment. */
struct JobSpec
{
    std::string scenario;
    SystemKind system = SystemKind::Slinfer;
    std::uint64_t seed = 0;
    OverrideSet overrides;
    /** Experiment window, stamped from the catalog at expansion. */
    Seconds duration = 0.0;

    /** Canonical spec string (the hash input). */
    std::string key() const;
    /** 16-hex-digit FNV-1a hash of key(): the result-store key. */
    std::string hash() const;
};

/**
 * Expand the grid in deterministic order (scenario-major, then system,
 * override set, seed). Unknown scenario names and empty axes are fatal.
 */
std::vector<JobSpec> expandGrid(const Grid &grid);

/** Apply one override set to an experiment config (fatal: unknown key). */
ExperimentConfig applyOverrides(ExperimentConfig cfg,
                                const OverrideSet &overrides);

/** Run one job to completion (scenario lookup + overrides + harness).
 *  `phaseProfile` turns on wall-clock phase attribution (obs/phase.hh);
 *  it never changes the report's bytes. `attribution` enables the
 *  latency-anatomy ledger (obs/anatomy.hh), which adds the report's
 *  "attribution" block without touching any other byte. */
Report runJob(const JobSpec &job, bool phaseProfile = false,
              bool attribution = false);

/** One finished job: its spec plus the report it produced. */
struct Record
{
    JobSpec job;
    Report report;
};

/** Progress callback payload (invoked under a lock, in completion
 *  order; `done` counts both executed and store-cached jobs). */
struct Progress
{
    std::size_t done = 0;
    std::size_t total = 0;
    const JobSpec *job = nullptr;
    /** True when the result came from the store, not a fresh run. */
    bool cached = false;
};

struct RunOptions
{
    /** Worker threads; <= 0 uses pool.hh's defaultJobs(). */
    int jobs = 0;
    /** JSONL result store path; "" runs in memory (no resume). */
    std::string storePath;
    std::function<void(const Progress &)> onProgress;
    /** Attribute wall-clock time to sim phases (event dispatch,
     *  controller decide, memory ops); read the totals back with
     *  obs::phaseTotalsSnapshot(). Reports are unaffected. */
    bool phaseProfile = false;
    /** Run every job with the latency-anatomy ledger on: reports grow
     *  an "attribution" block and the summary gains seg_* metrics.
     *  All pre-existing report bytes are unchanged. */
    bool attribution = false;
};

/** Execution accounting for progress/perf reporting. */
struct RunStats
{
    std::size_t executed = 0;
    std::size_t cached = 0;
    double wallSeconds = 0.0;
};

/**
 * Run every job of the grid (skipping those already in the store) and
 * return the records in grid order. On success the store file is
 * compacted into that same order, so its bytes are independent of
 * worker count and completion order.
 */
std::vector<Record> runGrid(const Grid &grid, const RunOptions &opts = {},
                            RunStats *stats = nullptr);

} // namespace sweep
} // namespace slinfer

#endif // SLINFER_SWEEP_SWEEP_HH
