#include "sweep/store.hh"

#include <set>
#include <sstream>

#include "common/log.hh"
#include "harness/systems.hh"
#include "sweep/json.hh"

namespace slinfer
{
namespace sweep
{

namespace
{

/** Rebuild a Report from the parsed "report" object of a record. */
Report
reportFromJson(const JsonValue &v)
{
    Report r;
    r.system = v.string("system");
    r.scenario = v.string("scenario");
    r.seed = static_cast<std::uint64_t>(v.num("seed"));
    r.totalRequests = static_cast<std::size_t>(v.num("total_requests"));
    r.completed = static_cast<std::size_t>(v.num("completed"));
    r.dropped = static_cast<std::size_t>(v.num("dropped"));
    r.sloMet = static_cast<std::size_t>(v.num("slo_met"));
    r.sloRate = v.num("slo_rate");
    r.avgCpuNodesUsed = v.num("avg_cpu_nodes_used");
    r.avgGpuNodesUsed = v.num("avg_gpu_nodes_used");
    r.decodeSpeedCpu = v.num("decode_speed_cpu");
    r.decodeSpeedGpu = v.num("decode_speed_gpu");
    r.p50Ttft = v.num("p50_ttft");
    r.p95Ttft = v.num("p95_ttft");
    r.gpuMemUtilMean = v.num("gpu_mem_util_mean");
    r.batchMean = v.num("batch_mean");
    r.migrationRate = v.num("migration_rate");
    r.kvUtilization = v.num("kv_utilization");
    r.scalingOverhead = v.num("scaling_overhead");
    auto pairs = [](const JsonValue *arr,
                    std::vector<std::pair<double, double>> &out) {
        if (!arr || !arr->isArray())
            return;
        for (const JsonValue &e : arr->array) {
            if (e.isArray() && e.array.size() == 2)
                out.emplace_back(e.array[0].number, e.array[1].number);
        }
    };
    pairs(v.find("ttft_cdf"), r.ttftCdf);
    pairs(v.find("gpu_timeline"), r.gpuTimeline);
    // The attribution block must round-trip: resumed/compacted sweeps
    // aggregate cached reports, and the summary's seg_* metrics have
    // to come out identical to a fresh run's.
    const JsonValue *attr = v.find("attribution");
    if (attr && attr->isObject()) {
        Report::Attribution &a = r.attribution;
        a.enabled = true;
        a.requests = static_cast<std::uint64_t>(attr->num("requests"));
        a.violations =
            static_cast<std::uint64_t>(attr->num("violations"));
        if (const JsonValue *segs = attr->find("segments");
            segs && segs->isArray()) {
            for (const JsonValue &sv : segs->array) {
                Report::Attribution::Segment s;
                s.name = sv.string("name");
                s.count = static_cast<std::uint64_t>(sv.num("count"));
                s.totalS = sv.num("total_s");
                s.p50s = sv.num("p50_s");
                s.p95s = sv.num("p95_s");
                s.p99s = sv.num("p99_s");
                s.blamed = static_cast<std::uint64_t>(sv.num("blamed"));
                a.segments.push_back(std::move(s));
            }
        }
        auto blameRow = [](const JsonValue &arr) {
            std::vector<std::uint64_t> out;
            for (const JsonValue &e : arr.array)
                out.push_back(static_cast<std::uint64_t>(e.number));
            return out;
        };
        if (const JsonValue *pm = attr->find("per_model");
            pm && pm->isArray()) {
            for (const JsonValue &mv : pm->array) {
                Report::Attribution::ModelBlame row;
                row.model = mv.string("model");
                if (const JsonValue *b = mv.find("blamed");
                    b && b->isArray())
                    row.blamed = blameRow(*b);
                a.perModel.push_back(std::move(row));
            }
        }
        a.windowLen = attr->num("window_len");
        if (const JsonValue *pw = attr->find("per_window");
            pw && pw->isArray()) {
            for (const JsonValue &wv : pw->array) {
                if (wv.isArray())
                    a.perWindow.push_back(blameRow(wv));
            }
        }
    }
    // The resilience block round-trips for the same reason: cached
    // chaos runs must summarize identically to fresh ones, or the
    // recovery-metrics gate would flap on resumed sweeps.
    const JsonValue *res = v.find("resilience");
    if (res && res->isObject()) {
        Report::Resilience &rs = r.resilience;
        rs.enabled = true;
        rs.faultEvents =
            static_cast<std::uint64_t>(res->num("fault_events"));
        rs.restores = static_cast<std::uint64_t>(res->num("restores"));
        rs.availability = res->num("availability");
        rs.mttrMeanS = res->num("mttr_mean_s");
        rs.degradedTimeS = res->num("degraded_time_s");
        rs.lostPerFault = res->num("lost_per_fault");
        rs.goodputFaultRpm = res->num("goodput_fault_rpm");
        rs.goodputHealthyRpm = res->num("goodput_healthy_rpm");
        rs.recoveryMeanS = res->num("recovery_mean_s");
    }
    return r;
}

} // namespace

std::string
ResultStore::recordLine(const JobSpec &job, const Report &report)
{
    std::ostringstream os;
    os.precision(17); // exact double round-trip, like toJsonLine
    os << "{\"key\": \"" << job.hash() << "\", \"scenario\": \""
       << jsonEscape(job.scenario) << "\", \"system\": \""
       << systemSlug(job.system) << "\", \"seed\": " << job.seed
       << ", \"override_name\": \"" << jsonEscape(job.overrides.name)
       << "\", \"overrides\": \""
       << jsonEscape(job.overrides.canonical()) << "\", \"duration\": "
       << job.duration << ", \"report\": " << toJsonLine(report) << "}";
    return os.str();
}

bool
ResultStore::parseRecordLine(const std::string &line, JobSpec &job,
                             Report &report, std::string *err)
{
    JsonValue v;
    if (!parseJson(line, v, err))
        return false;
    if (!v.isObject()) {
        if (err)
            *err = "record is not a JSON object";
        return false;
    }
    job.scenario = v.string("scenario");
    if (!tryParseSystem(v.string("system"), job.system)) {
        if (err)
            *err = "unknown system slug '" + v.string("system") + "'";
        return false;
    }
    job.seed = static_cast<std::uint64_t>(v.num("seed"));
    job.overrides.name = v.string("override_name");
    if (!tryParseOverrideSettings(v.string("overrides"),
                                  job.overrides.settings, err))
        return false;
    job.duration = v.num("duration");
    const JsonValue *rep = v.find("report");
    if (!rep || !rep->isObject()) {
        if (err)
            *err = "record has no report object";
        return false;
    }
    report = reportFromJson(*rep);
    // The stored key must agree with the recomputed hash; a mismatch
    // means the file was hand-edited or the hash scheme drifted.
    if (v.string("key") != job.hash()) {
        if (err)
            *err = "record key '" + v.string("key") +
                   "' does not match recomputed hash " + job.hash();
        return false;
    }
    return true;
}

std::vector<std::string>
ResultStore::loadLines(const std::string &content, bool dropTorn)
{
    std::vector<std::string> valid_lines;
    std::string line;
    int lineno = 0;
    // `complete` distinguishes a newline-terminated record from a
    // final line torn by a mid-append crash: the torn line is the
    // expected interrupt artifact (drop it; the job re-runs), but a
    // complete record that fails to parse means real corruption and
    // should be inspected, not silently recomputed.
    auto flush_line = [&](bool complete) {
        if (line.empty())
            return;
        ++lineno;
        JobSpec job;
        Report report;
        std::string err;
        if (!parseRecordLine(line, job, report, &err)) {
            if (!complete && dropTorn) {
                logf(LogLevel::Warn, "result store ", path_,
                     ": dropping torn final record (interrupted "
                     "write); the job will re-run");
            } else {
                fatal("result store " + path_ + " line " +
                      std::to_string(lineno) + ": " + err);
            }
        } else {
            byHash_.emplace(job.hash(),
                            std::make_unique<Report>(std::move(report)));
            valid_lines.push_back(line);
        }
        line.clear();
    };
    for (char c : content) {
        if (c == '\n')
            flush_line(true);
        else
            line += c;
    }
    flush_line(false);
    return valid_lines;
}

ResultStore::ResultStore(const std::string &path) : path_(path)
{
    if (path_.empty())
        return;
    compressed_ = path_.size() >= 5 &&
                  path_.compare(path_.size() - 5, 5, ".strz") == 0;

    // Load whatever a previous (possibly interrupted) sweep persisted.
    std::string err;
    if (compressed_) {
        std::string content;
        bool torn = false;
        if (!stream::strzReadAll(path_, content, &err, &torn))
            fatal("result store " + path_ + ": " + err);
        // Chunk CRCs already vouch for the content, so any parse
        // failure in it is real corruption — no torn-line tolerance.
        std::vector<std::string> valid_lines =
            loadLines(content, /*dropTorn=*/false);
        loaded_ = byHash_.size();
        if (torn) {
            logf(LogLevel::Warn, "result store ", path_, ": dropping "
                 "torn tail chunk (interrupted write); the affected "
                 "job will re-run");
            // The torn bytes must come off disk before appending.
            stream::StrzWriter rw;
            if (!rw.open(path_, /*truncate=*/true, &err))
                fatal("result store: cannot rewrite " + path_ + ": " +
                      err);
            std::string batch;
            for (const std::string &l : valid_lines)
                batch += l + "\n";
            if (!batch.empty() && !rw.appendBlock(batch, &err))
                fatal("result store: cannot rewrite " + path_ + ": " +
                      err);
        }
        if (!zwriter_.open(path_, /*truncate=*/false, &err))
            fatal("result store: cannot open " + path_ +
                  " for append: " + err);
        return;
    }

    bool needs_rewrite = false;
    std::vector<std::string> valid_lines;
    if (std::FILE *in = std::fopen(path_.c_str(), "r")) {
        std::string content;
        int c;
        while ((c = std::fgetc(in)) != EOF)
            content += static_cast<char>(c);
        std::fclose(in);
        valid_lines = loadLines(content, /*dropTorn=*/true);
        loaded_ = byHash_.size();
        // Any unterminated tail — torn mid-record (dropped above) or a
        // record that parsed but lost its newline — must come off the
        // file, or the next append concatenates onto it and corrupts a
        // line.
        needs_rewrite = !content.empty() && content.back() != '\n';
    }

    if (needs_rewrite) {
        std::FILE *out = std::fopen(path_.c_str(), "w");
        if (!out)
            fatal("result store: cannot rewrite " + path_);
        for (const std::string &l : valid_lines)
            std::fprintf(out, "%s\n", l.c_str());
        std::fclose(out);
    }

    file_ = std::fopen(path_.c_str(), "a");
    if (!file_)
        fatal("result store: cannot open " + path_ + " for append");
}

ResultStore::~ResultStore()
{
    if (file_)
        std::fclose(file_);
    zwriter_.close();
}

const Report *
ResultStore::find(const std::string &hash) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::unique_ptr<Report> *p =
        byHash_.find(std::string_view(hash));
    return p ? p->get() : nullptr;
}

void
ResultStore::append(const JobSpec &job, const Report &report)
{
    std::lock_guard<std::mutex> lock(mutex_);
    byHash_.emplace(job.hash(), std::make_unique<Report>(report));
    if (path_.empty())
        return;
    std::string line = recordLine(job, report);
    if (compressed_) {
        std::string err;
        if (!zwriter_.appendBlock(line + "\n", &err))
            fatal("result store " + path_ + ": " + err);
        return;
    }
    std::fprintf(file_, "%s\n", line.c_str());
    std::fflush(file_);
}

void
ResultStore::compact(const std::vector<Record> &ordered)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (path_.empty())
        return;
    // Only rewrite a store that holds exactly this grid's records. A
    // shared store (several grids accumulating into one file) keeps
    // its append-only layout: compaction must never drop results that
    // belong to another sweep.
    std::set<std::string> ours;
    for (const Record &rec : ordered)
        ours.insert(rec.job.hash());
    bool foreign = false;
    byHash_.forEach([&](const std::string &hash,
                        const std::unique_ptr<Report> &) {
        if (!ours.count(hash))
            foreign = true;
    });
    if (foreign) {
        logf(LogLevel::Info, "result store ", path_, ": holds "
             "records outside this grid; skipping grid-order "
             "compaction");
        return;
    }
    if (compressed_) {
        zwriter_.close();
        std::string err;
        stream::StrzWriter rw;
        if (!rw.open(path_, /*truncate=*/true, &err))
            fatal("result store: cannot rewrite " + path_ + ": " + err);
        // Re-batch the per-append one-line chunks into big blocks: the
        // context model warms up over a whole batch instead of
        // restarting per record, which is where most of the ratio
        // comes from.
        std::string batch;
        for (const Record &rec : ordered) {
            batch += recordLine(rec.job, rec.report) + "\n";
            if (batch.size() >= (1u << 20)) {
                if (!rw.appendBlock(batch, &err))
                    fatal("result store " + path_ + ": " + err);
                batch.clear();
            }
        }
        if (!batch.empty() && !rw.appendBlock(batch, &err))
            fatal("result store " + path_ + ": " + err);
        rw.close();
        if (!zwriter_.open(path_, /*truncate=*/false, &err))
            fatal("result store: cannot reopen " + path_ + ": " + err);
        return;
    }
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
    std::FILE *out = std::fopen(path_.c_str(), "w");
    if (!out)
        fatal("result store: cannot rewrite " + path_);
    for (const Record &rec : ordered)
        std::fprintf(out, "%s\n", recordLine(rec.job, rec.report).c_str());
    std::fclose(out);
    file_ = std::fopen(path_.c_str(), "a");
    if (!file_)
        fatal("result store: cannot reopen " + path_);
}

} // namespace sweep
} // namespace slinfer
