/**
 * @file
 * Minimal JSON reader for the sweep subsystem.
 *
 * The sweep result store and the regression gate only ever read JSON
 * this repository wrote itself (Report records, sweep summaries,
 * checked-in baselines), so this is a small strict parser for that
 * dialect: objects, arrays, strings with the escapes jsonEscape()
 * emits, doubles, bools, null. It is not a general-purpose validator;
 * malformed input yields a parse error, not UB.
 */

#ifndef SLINFER_SWEEP_JSON_HH
#define SLINFER_SWEEP_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace slinfer
{
namespace sweep
{

/** A parsed JSON value (tree form). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    /** Insertion order is not preserved; sweep JSON never relies on it. */
    std::map<std::string, JsonValue> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Object member or nullptr. */
    const JsonValue *find(const std::string &key) const;

    /** Numeric member with a default (0.0 keeps old files readable). */
    double num(const std::string &key, double dflt = 0.0) const;

    /** String member with a default. */
    std::string string(const std::string &key,
                       const std::string &dflt = "") const;
};

/**
 * Parse one JSON document. Returns false (with a message in *err) on
 * malformed input; trailing garbage after the document is an error.
 * (The matching writer-side escaper is jsonEscape() in
 * metrics/report.hh.)
 */
bool parseJson(const std::string &text, JsonValue &out, std::string *err);

} // namespace sweep
} // namespace slinfer

#endif // SLINFER_SWEEP_JSON_HH
