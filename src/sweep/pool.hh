/**
 * @file
 * Work-stealing execution of a fixed batch of independent tasks.
 *
 * Sweep jobs are embarrassingly parallel (each builds its own
 * Simulator/Experiment; nothing mutable crosses threads), so the pool
 * is deliberately simple: the task list is known up front, each worker
 * gets a contiguous shard of indices in its own deque, drains it from
 * the front, and steals from the *back* of a victim's deque when it
 * runs dry. Stealing from the opposite end keeps contention on a
 * victim's mutex to a single CAS-sized critical section and preserves
 * rough locality of the original sharding.
 *
 * Tasks must not throw; a task that needs to report failure records it
 * in its own result slot. fatal()/panic() still work (they terminate
 * the process, which is their contract).
 */

#ifndef SLINFER_SWEEP_POOL_HH
#define SLINFER_SWEEP_POOL_HH

#include <cstddef>
#include <functional>

namespace slinfer
{
namespace sweep
{

/**
 * Number of workers to use for `--jobs 0` / unspecified: the hardware
 * concurrency, with a floor of 1 (hardware_concurrency may return 0).
 */
int defaultJobs();

/**
 * Run fn(0) .. fn(n-1), each exactly once, on `threads` workers with
 * work stealing. Blocks until every task has finished. `threads <= 1`
 * (or n <= 1) degrades to an inline loop in the calling thread — the
 * execution order is then exactly 0..n-1, which keeps single-job runs
 * trivially deterministic and debuggable.
 */
void parallelFor(std::size_t n, int threads,
                 const std::function<void(std::size_t)> &fn);

} // namespace sweep
} // namespace slinfer

#endif // SLINFER_SWEEP_POOL_HH
