/**
 * @file
 * Work-stealing execution of a fixed batch of independent tasks.
 *
 * Sweep jobs are embarrassingly parallel (each builds its own
 * Simulator/Experiment; nothing mutable crosses threads), so the pool
 * is deliberately simple: the task list is known up front, each worker
 * gets a contiguous shard of indices in its own deque, drains it from
 * the front, and steals from the *back* of a victim's deque when it
 * runs dry. Stealing from the opposite end keeps contention on a
 * victim's mutex to a single CAS-sized critical section and preserves
 * rough locality of the original sharding.
 *
 * Tasks must not throw; a task that needs to report failure records it
 * in its own result slot. fatal()/panic() still work (they terminate
 * the process, which is their contract).
 */

#ifndef SLINFER_SWEEP_POOL_HH
#define SLINFER_SWEEP_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace slinfer
{
namespace sweep
{

/**
 * Number of workers to use for `--jobs 0` / unspecified: the hardware
 * concurrency, with a floor of 1 (hardware_concurrency may return 0).
 */
int defaultJobs();

/**
 * Run fn(0) .. fn(n-1), each exactly once, on `threads` workers with
 * work stealing. Blocks until every task has finished. `threads <= 1`
 * (or n <= 1) degrades to an inline loop in the calling thread — the
 * execution order is then exactly 0..n-1, which keeps single-job runs
 * trivially deterministic and debuggable.
 */
void parallelFor(std::size_t n, int threads,
                 const std::function<void(std::size_t)> &fn);

/**
 * The persistent form of parallelFor: the same sharded-deque,
 * steal-from-the-back execution, but with workers parked between
 * batches instead of spawned per call. The lockstep simulation engine
 * (sim/lockstep.hh) dispatches tens of thousands of small node-phase
 * batches per run — per-call thread spawn would dominate the work.
 *
 * run() is strictly serialized: a new batch is only admitted once
 * every worker has parked after the previous one, so a worker can
 * never observe a stale batch function while scanning for steals.
 * The join edge (remaining -> 0, observed under the pool mutex)
 * orders every task's writes before run() returns — callers may read
 * task results without further synchronization.
 *
 * Tasks must not throw (same contract as parallelFor). `threads <= 1`
 * spawns nothing and runs batches inline in index order.
 */
class TaskPool
{
  public:
    explicit TaskPool(int threads);
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /** Workers plus the calling thread; >= 1. */
    int threads() const { return static_cast<int>(workers_.size()) + 1; }

    /** Run fn(0) .. fn(n-1), each exactly once; blocks until done. */
    void run(std::size_t n, const std::function<void(std::size_t)> &fn);

  private:
    struct Shard;

    void workerMain(std::size_t self);
    /** Drain own shard from the front, then steal from the back of
     *  the others; returns when every shard is dry. */
    void participate(std::size_t self,
                     const std::function<void(std::size_t)> &fn);
    void finishOne();

    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(std::size_t)> *fn_ = nullptr;
    std::uint64_t generation_ = 0;
    std::size_t idle_ = 0;
    std::atomic<std::size_t> remaining_{0};
    bool stop_ = false;
};

} // namespace sweep
} // namespace slinfer

#endif // SLINFER_SWEEP_POOL_HH
