/**
 * @file
 * Cross-seed aggregation of sweep records.
 *
 * Records are grouped by (scenario, system, override set); the seeds
 * within a group are replicates. For every report metric the group
 * gets mean / p50 / p99 across replicates plus a 95% percentile
 * bootstrap confidence interval on the mean (deterministically seeded
 * from the group and metric name, so the summary is byte-stable).
 * A derived goodput metric (SLO-met requests per minute of simulated
 * time) heads the list — it is the headline number the regression
 * gate watches.
 */

#ifndef SLINFER_SWEEP_SUMMARY_HH
#define SLINFER_SWEEP_SUMMARY_HH

#include <string>
#include <vector>

#include "sweep/json.hh"
#include "sweep/sweep.hh"

namespace slinfer
{
namespace sweep
{

/** Aggregate of one metric across a group's replicates. */
struct MetricSummary
{
    std::size_t n = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    /** 95% percentile-bootstrap CI on the mean. */
    double ciLo = 0.0;
    double ciHi = 0.0;
};

/** One (scenario, system, override set) group. */
struct SummaryRow
{
    std::string scenario;
    std::string system; ///< slug
    std::string overrideName;
    std::string overrides; ///< canonical "k=v;k=v"
    std::size_t replicates = 0;
    Seconds duration = 0.0;
    /** (metric name, summary), fixed order, goodput_rpm first. */
    std::vector<std::pair<std::string, MetricSummary>> metrics;

    /** Stable row identity for baseline matching. */
    std::string key() const;

    const MetricSummary *metric(const std::string &name) const;
};

/**
 * mean/p50/p99 of `samples` plus the bootstrap CI on the mean
 * (`iters` resamples, deterministic in `seed`).
 */
MetricSummary bootstrapSummary(const std::vector<double> &samples,
                               std::uint64_t seed, int iters = 1000);

/** Group records (grid order preserved) and aggregate every metric. */
std::vector<SummaryRow> summarize(const std::vector<Record> &records,
                                  int bootstrapIters = 1000);

std::string summaryToJson(const std::vector<SummaryRow> &rows);
std::string summaryToCsv(const std::vector<SummaryRow> &rows);

/** Parse summaryToJson() output (e.g. a checked-in baseline). */
bool summaryFromJson(const std::string &text,
                     std::vector<SummaryRow> &out, std::string *err);

} // namespace sweep
} // namespace slinfer

#endif // SLINFER_SWEEP_SUMMARY_HH
