#include "sweep/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace slinfer
{
namespace sweep
{

const JsonValue *
JsonValue::find(const std::string &key) const
{
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

double
JsonValue::num(const std::string &key, double dflt) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->number : dflt;
}

std::string
JsonValue::string(const std::string &key, const std::string &dflt) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->str : dflt;
}

namespace
{

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string err;

    explicit Parser(const std::string &t) : text(t) {}

    bool fail(const std::string &what)
    {
        if (err.empty())
            err = what + " at offset " + std::to_string(pos);
        return false;
    }

    void skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool literal(const char *word, JsonValue &out, JsonValue::Kind kind,
                 bool boolean)
    {
        std::size_t n = std::string(word).size();
        if (text.compare(pos, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos += n;
        out.kind = kind;
        out.boolean = boolean;
        return true;
    }

    bool parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("unterminated escape");
            char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                  if (pos + 4 > text.size())
                      return fail("truncated \\u escape");
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      char h = text[pos++];
                      code <<= 4;
                      if (h >= '0' && h <= '9')
                          code |= h - '0';
                      else if (h >= 'a' && h <= 'f')
                          code |= h - 'a' + 10;
                      else if (h >= 'A' && h <= 'F')
                          code |= h - 'A' + 10;
                      else
                          return fail("bad \\u escape");
                  }
                  // Our writer only emits \u00xx control escapes; decode
                  // the Latin-1 range as one byte and anything else as
                  // UTF-8 (two/three bytes, no surrogate handling).
                  if (code < 0x80) {
                      out += static_cast<char>(code);
                  } else if (code < 0x800) {
                      out += static_cast<char>(0xC0 | (code >> 6));
                      out += static_cast<char>(0x80 | (code & 0x3F));
                  } else {
                      out += static_cast<char>(0xE0 | (code >> 12));
                      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                      out += static_cast<char>(0x80 | (code & 0x3F));
                  }
                  break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(JsonValue &out)
    {
        std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                text[pos] == '+' || text[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected number");
        char *end = nullptr;
        std::string tok = text.substr(start, pos - start);
        out.number = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            return fail("malformed number");
        out.kind = JsonValue::Kind::Number;
        return true;
    }

    bool parseValue(JsonValue &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            ++pos;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return false;
                JsonValue member;
                if (!parseValue(member))
                    return false;
                out.object.emplace(std::move(key), std::move(member));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                return consume('}');
            }
        }
        if (c == '[') {
            ++pos;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                JsonValue elem;
                if (!parseValue(elem))
                    return false;
                out.array.push_back(std::move(elem));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                return consume(']');
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
        }
        if (c == 't')
            return literal("true", out, JsonValue::Kind::Bool, true);
        if (c == 'f')
            return literal("false", out, JsonValue::Kind::Bool, false);
        if (c == 'n')
            return literal("null", out, JsonValue::Kind::Null, false);
        return parseNumber(out);
    }
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string *err)
{
    Parser p(text);
    bool ok = p.parseValue(out);
    if (ok) {
        p.skipWs();
        if (p.pos != text.size()) {
            ok = false;
            p.fail("trailing garbage");
        }
    }
    if (!ok && err)
        *err = p.err;
    return ok;
}

} // namespace sweep
} // namespace slinfer
