/**
 * @file
 * Perf-regression gate: diff a sweep summary against a checked-in
 * baseline and fail readably when the headline metrics drift.
 *
 * This is the seed of the repo's BENCH_* perf trajectory: CI runs a
 * smoke sweep, compares against the bench/baselines JSON files, and a
 * PR that
 * regresses goodput or TTFT beyond tolerance fails with a table
 * pointing at the offending (scenario, system, metric) cell rather
 * than a bare exit code.
 */

#ifndef SLINFER_SWEEP_COMPARE_HH
#define SLINFER_SWEEP_COMPARE_HH

#include <string>
#include <vector>

#include "sweep/summary.hh"

namespace slinfer
{
namespace sweep
{

/** One gated metric and its drift policy. */
struct GateMetric
{
    std::string name;
    /** Direction: true = a drop is a regression (goodput), false = a
     *  rise is (latency). */
    bool higherIsBetter = true;
    /** Absolute slack added on top of the relative tolerance, in the
     *  metric's own unit, so near-zero baselines don't gate on noise. */
    double absSlack = 0.0;
};

struct CompareOptions
{
    /** Allowed relative drift in the bad direction (0.10 = 10%). */
    double tolerance = 0.10;
    /** Metrics to gate; empty uses the default set (goodput_rpm,
     *  slo_rate, p50_ttft, p95_ttft). */
    std::vector<GateMetric> metrics;
};

/** The default gate set (used when CompareOptions::metrics is empty). */
std::vector<GateMetric> defaultGateMetrics();

struct CompareResult
{
    bool pass = true;
    std::size_t checked = 0;     ///< metric cells compared
    std::size_t regressions = 0; ///< cells beyond tolerance
    std::size_t missingRows = 0; ///< baseline rows absent from current
    std::size_t newRows = 0;     ///< current rows absent from baseline
    /** Human-readable drift table plus verdict line. */
    std::string table;
};

/** Compare current against baseline rows. Missing current rows fail
 *  the gate; rows new in current are reported but do not fail. */
CompareResult compare(const std::vector<SummaryRow> &current,
                      const std::vector<SummaryRow> &baseline,
                      const CompareOptions &opts = {});

} // namespace sweep
} // namespace slinfer

#endif // SLINFER_SWEEP_COMPARE_HH
