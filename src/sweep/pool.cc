#include "sweep/pool.hh"

#include <algorithm>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace slinfer
{
namespace sweep
{

int
defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

namespace
{

/** One worker's deque of task indices, guarded by its own mutex. */
struct WorkerQueue
{
    std::mutex mutex;
    std::deque<std::size_t> tasks;

    bool popFront(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (tasks.empty())
            return false;
        out = tasks.front();
        tasks.pop_front();
        return true;
    }

    bool stealBack(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (tasks.empty())
            return false;
        out = tasks.back();
        tasks.pop_back();
        return true;
    }
};

} // namespace

void
parallelFor(std::size_t n, int threads,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    std::size_t workers = std::max(1, threads);
    workers = std::min(workers, n);
    if (workers == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Shard indices contiguously so worker w starts on its "own" range
    // and stealing only happens once a shard drains.
    std::vector<WorkerQueue> queues(workers);
    for (std::size_t i = 0; i < n; ++i)
        queues[i * workers / n].tasks.push_back(i);

    auto work = [&](std::size_t self) {
        std::size_t task;
        while (true) {
            if (queues[self].popFront(task)) {
                fn(task);
                continue;
            }
            // Own queue dry: scan the others (starting past self so
            // workers fan out over distinct victims) and steal from
            // the back.
            bool stole = false;
            for (std::size_t k = 1; k < queues.size() && !stole; ++k) {
                std::size_t victim = (self + k) % queues.size();
                stole = queues[victim].stealBack(task);
            }
            if (!stole)
                return; // every queue empty: batch finished
            fn(task);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w)
        pool.emplace_back(work, w);
    work(0);
    for (std::thread &t : pool)
        t.join();
}

} // namespace sweep
} // namespace slinfer
