#include "sweep/pool.hh"

#include <algorithm>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace slinfer
{
namespace sweep
{

int
defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

namespace
{

/** One worker's deque of task indices, guarded by its own mutex. */
struct WorkerQueue
{
    std::mutex mutex;
    std::deque<std::size_t> tasks;

    bool popFront(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (tasks.empty())
            return false;
        out = tasks.front();
        tasks.pop_front();
        return true;
    }

    bool stealBack(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (tasks.empty())
            return false;
        out = tasks.back();
        tasks.pop_back();
        return true;
    }
};

} // namespace

void
parallelFor(std::size_t n, int threads,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    std::size_t workers = std::max(1, threads);
    workers = std::min(workers, n);
    if (workers == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Shard indices contiguously so worker w starts on its "own" range
    // and stealing only happens once a shard drains.
    std::vector<WorkerQueue> queues(workers);
    for (std::size_t i = 0; i < n; ++i)
        queues[i * workers / n].tasks.push_back(i);

    auto work = [&](std::size_t self) {
        std::size_t task;
        while (true) {
            if (queues[self].popFront(task)) {
                fn(task);
                continue;
            }
            // Own queue dry: scan the others (starting past self so
            // workers fan out over distinct victims) and steal from
            // the back.
            bool stole = false;
            for (std::size_t k = 1; k < queues.size() && !stole; ++k) {
                std::size_t victim = (self + k) % queues.size();
                stole = queues[victim].stealBack(task);
            }
            if (!stole)
                return; // every queue empty: batch finished
            fn(task);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w)
        pool.emplace_back(work, w);
    work(0);
    for (std::thread &t : pool)
        t.join();
}

/** One TaskPool participant's deque, same shape as WorkerQueue above
 *  but long-lived across batches. */
struct TaskPool::Shard
{
    std::mutex mutex;
    std::deque<std::size_t> tasks;

    bool
    popFront(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (tasks.empty())
            return false;
        out = tasks.front();
        tasks.pop_front();
        return true;
    }

    bool
    stealBack(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (tasks.empty())
            return false;
        out = tasks.back();
        tasks.pop_back();
        return true;
    }
};

TaskPool::TaskPool(int threads)
{
    std::size_t count =
        threads < 1 ? 1 : static_cast<std::size_t>(threads);
    shards_.reserve(count);
    for (std::size_t s = 0; s < count; ++s)
        shards_.push_back(std::make_unique<Shard>());
    workers_.reserve(count - 1);
    for (std::size_t w = 1; w < count; ++w)
        workers_.emplace_back([this, w] { workerMain(w); });
}

TaskPool::~TaskPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
TaskPool::finishOne()
{
    // acq_rel: release-publish this task's writes to whoever observes
    // the count, acquire-chain the writes of tasks finished before it.
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_.notify_all();
    }
}

void
TaskPool::participate(std::size_t self,
                      const std::function<void(std::size_t)> &fn)
{
    std::size_t task;
    for (;;) {
        if (shards_[self]->popFront(task)) {
            fn(task);
            finishOne();
            continue;
        }
        bool stole = false;
        for (std::size_t k = 1; k < shards_.size() && !stole; ++k) {
            std::size_t victim = (self + k) % shards_.size();
            stole = shards_[victim]->stealBack(task);
        }
        if (!stole)
            return; // every shard dry; stragglers may still be running
        fn(task);
        finishOne();
    }
}

void
TaskPool::workerMain(std::size_t self)
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *fn = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            ++idle_;
            // run() waits for every worker to park before admitting
            // the next batch; parking is what makes fn_ safe to read.
            wake_.notify_all();
            wake_.wait(lock, [this, seen] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            fn = fn_;
            --idle_;
        }
        participate(self, *fn);
    }
}

void
TaskPool::run(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers_.empty()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    const std::size_t participants = workers_.size() + 1;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        // Rendezvous: no worker may still be scanning the previous
        // batch's shards when the new tasks appear, or it would run
        // them against the previous batch's function.
        wake_.wait(lock,
                   [this] { return idle_ == workers_.size(); });
        fn_ = &fn;
        remaining_.store(n, std::memory_order_relaxed);
        for (std::size_t i = 0; i < n; ++i)
            shards_[i * participants / n]->tasks.push_back(i);
        ++generation_;
    }
    wake_.notify_all();
    participate(0, fn);
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] {
        return remaining_.load(std::memory_order_acquire) == 0;
    });
}

} // namespace sweep
} // namespace slinfer
