/**
 * @file
 * On-disk sweep result store: one record per finished job, keyed by
 * the job's config hash.
 *
 * Two layouts, chosen by the path's suffix:
 *  - plain JSONL (the default): one line per record, greppable;
 *  - `.strz` (stream/codec.hh): the same logical lines framed into
 *    checksummed context-model-compressed chunks, one chunk per
 *    append. Large sweeps shrink ~5-10x; compact() additionally
 *    re-batches the lines into big chunks for the best ratio.
 *
 * Opening a store loads every existing record, so a re-run of the same
 * grid skips completed jobs (resume-from-partial after an interrupt).
 * append() is thread-safe and flushes per record — a job that finished
 * is durable even if the process dies mid-sweep; a record torn by the
 * crash (unterminated line / torn tail chunk) is dropped with a
 * warning and the job simply re-runs. compact() rewrites the file in
 * grid order once a sweep completes, making the bytes independent of
 * worker count and completion order.
 */

#ifndef SLINFER_SWEEP_STORE_HH
#define SLINFER_SWEEP_STORE_HH

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/flat_hash.hh"
#include "stream/codec.hh"
#include "sweep/sweep.hh"

namespace slinfer
{
namespace sweep
{

class ResultStore
{
  public:
    /** Open (creating if absent) the store at `path`; "" = in-memory
     *  only. Unreadable records in an existing file are fatal — a
     *  corrupt store should be inspected, not silently recomputed. */
    explicit ResultStore(const std::string &path);
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /** Report cached under this config hash, or nullptr. */
    const Report *find(const std::string &hash) const;

    /** Number of records loaded from disk at open. */
    std::size_t loaded() const { return loaded_; }

    /** Append one record and flush (thread-safe). */
    void append(const JobSpec &job, const Report &report);

    /** Rewrite the file as exactly `ordered`, in order. No-op for
     *  in-memory stores. */
    void compact(const std::vector<Record> &ordered);

    /** Serialize one record as a single JSONL line (no newline). */
    static std::string recordLine(const JobSpec &job, const Report &report);

    /** Parse a recordLine(); false + *err on malformed input. */
    static bool parseRecordLine(const std::string &line, JobSpec &job,
                                Report &report, std::string *err);

  private:
    /** Load `lines` (split on '\n') into byHash_; fatal on a complete
     *  line that fails to parse. Returns the kept lines. */
    std::vector<std::string> loadLines(const std::string &content,
                                       bool dropTorn);

    std::string path_;
    /** True when `path_` ends in ".strz" (compressed layout). */
    bool compressed_ = false;
    /** JSONL append handle (null in compressed / in-memory mode). */
    std::FILE *file_ = nullptr;
    /** Compressed append handle (closed in JSONL / in-memory mode). */
    stream::StrzWriter zwriter_;
    mutable std::mutex mutex_;
    /** Reports live behind unique_ptr: find() hands out raw pointers
     *  that must survive the flat map's rehashes. */
    FlatHashMap<std::string, std::unique_ptr<Report>> byHash_;
    std::size_t loaded_ = 0;
};

} // namespace sweep
} // namespace slinfer

#endif // SLINFER_SWEEP_STORE_HH
