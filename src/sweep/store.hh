/**
 * @file
 * On-disk sweep result store: one JSONL record per finished job, keyed
 * by the job's config hash.
 *
 * Opening a store loads every existing record, so a re-run of the same
 * grid skips completed jobs (resume-from-partial after an interrupt).
 * append() is thread-safe and flushes per line — a job that finished
 * is durable even if the process dies mid-sweep. compact() rewrites
 * the file in grid order once a sweep completes, making the bytes
 * independent of worker count and completion order.
 */

#ifndef SLINFER_SWEEP_STORE_HH
#define SLINFER_SWEEP_STORE_HH

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sweep/sweep.hh"

namespace slinfer
{
namespace sweep
{

class ResultStore
{
  public:
    /** Open (creating if absent) the store at `path`; "" = in-memory
     *  only. Unreadable records in an existing file are fatal — a
     *  corrupt store should be inspected, not silently recomputed. */
    explicit ResultStore(const std::string &path);
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /** Report cached under this config hash, or nullptr. */
    const Report *find(const std::string &hash) const;

    /** Number of records loaded from disk at open. */
    std::size_t loaded() const { return loaded_; }

    /** Append one record and flush (thread-safe). */
    void append(const JobSpec &job, const Report &report);

    /** Rewrite the file as exactly `ordered`, in order. No-op for
     *  in-memory stores. */
    void compact(const std::vector<Record> &ordered);

    /** Serialize one record as a single JSONL line (no newline). */
    static std::string recordLine(const JobSpec &job, const Report &report);

    /** Parse a recordLine(); false + *err on malformed input. */
    static bool parseRecordLine(const std::string &line, JobSpec &job,
                                Report &report, std::string *err);

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    mutable std::mutex mutex_;
    std::map<std::string, Report> byHash_;
    std::size_t loaded_ = 0;
};

} // namespace sweep
} // namespace slinfer

#endif // SLINFER_SWEEP_STORE_HH
