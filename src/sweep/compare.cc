#include "sweep/compare.hh"

#include <cmath>
#include <sstream>

#include "common/table.hh"

namespace slinfer
{
namespace sweep
{

std::vector<GateMetric>
defaultGateMetrics()
{
    // Slack units: goodput rpm, SLO-met fraction, seconds. The slack
    // absorbs cross-compiler floating-point jitter on tiny baselines;
    // real drifts on the smoke grid are far larger.
    return {
        {"goodput_rpm", true, 0.5},
        {"slo_rate", true, 0.01},
        {"p50_ttft", false, 0.05},
        {"p95_ttft", false, 0.05},
        // Latency-anatomy gates: present only when the sweep ran with
        // --attribution (compare() skips metrics missing on either
        // side), and then a TTFT regression names the segment that
        // moved instead of just the total.
        {"seg_queue_wait_p95_s", false, 0.05},
        {"seg_cold_start_p95_s", false, 0.05},
        {"seg_kv_stall_p95_s", false, 0.05},
        {"seg_decode_gap_p95_s", false, 0.05},
        {"seg_rewind_p95_s", false, 0.05},
        // Resilience gates: present only on chaos scenarios (probed
        // runs). CI fails when recovery slows down or faults start
        // costing more requests than the baseline.
        {"res_availability", true, 0.01},
        {"res_mttr_mean_s", false, 2.0},
        {"res_recovery_mean_s", false, 2.0},
        {"res_lost_per_fault", false, 2.0},
    };
}

CompareResult
compare(const std::vector<SummaryRow> &current,
        const std::vector<SummaryRow> &baseline,
        const CompareOptions &opts)
{
    std::vector<GateMetric> gates =
        opts.metrics.empty() ? defaultGateMetrics() : opts.metrics;

    CompareResult res;
    Table table({"scenario", "system", "override", "metric", "baseline",
                 "current", "drift", "verdict"});

    auto findRow = [](const std::vector<SummaryRow> &rows,
                      const std::string &key) -> const SummaryRow * {
        for (const SummaryRow &row : rows) {
            if (row.key() == key)
                return &row;
        }
        return nullptr;
    };

    std::ostringstream notes;
    for (const SummaryRow &base : baseline) {
        const SummaryRow *cur = findRow(current, base.key());
        if (!cur) {
            ++res.missingRows;
            res.pass = false;
            notes << "MISSING: baseline row " << base.scenario << "/"
                  << base.system
                  << (base.overrideName.empty() ? ""
                                                : "/" + base.overrideName)
                  << " has no counterpart in the current sweep\n";
            continue;
        }
        for (const GateMetric &gate : gates) {
            const MetricSummary *b = base.metric(gate.name);
            const MetricSummary *c = cur->metric(gate.name);
            if (!b || !c)
                continue; // older baselines may lack newer metrics
            ++res.checked;
            double drift = c->mean - b->mean;
            double bad = gate.higherIsBetter ? -drift : drift;
            double allowed =
                opts.tolerance * std::abs(b->mean) + gate.absSlack;
            bool regress = bad > allowed;
            if (regress) {
                ++res.regressions;
                res.pass = false;
            }
            double rel = b->mean != 0.0 ? 100.0 * drift / b->mean : 0.0;
            std::string verdict =
                regress ? "REGRESSION"
                        : (bad < -allowed ? "improved" : "ok");
            table.addRow({cur->scenario, cur->system,
                          cur->overrideName.empty() ? "-"
                                                    : cur->overrideName,
                          gate.name, Table::num(b->mean, 4),
                          Table::num(c->mean, 4),
                          Table::num(rel, 1) + "%", verdict});
        }
    }
    for (const SummaryRow &cur : current) {
        if (!findRow(baseline, cur.key())) {
            ++res.newRows;
            notes << "NEW: row " << cur.scenario << "/" << cur.system
                  << (cur.overrideName.empty() ? ""
                                               : "/" + cur.overrideName)
                  << " is not in the baseline (refresh it to start "
                     "gating this cell)\n";
        }
    }

    // Fail closed: a baseline that matched rows but yielded zero
    // comparable metric cells (renamed metrics, malformed writer)
    // would otherwise green-light CI while gating nothing.
    if (!baseline.empty() && res.checked == 0) {
        res.pass = false;
        notes << "EMPTY GATE: no gated metric was found in both the "
                 "baseline and the current summary; the baseline is "
                 "stale or malformed — regenerate it\n";
    }

    std::ostringstream os;
    table.print(os);
    os << notes.str();
    os << (res.pass ? "PASS" : "FAIL") << ": " << res.checked
       << " metric cells checked, " << res.regressions << " regression"
       << (res.regressions == 1 ? "" : "s") << ", " << res.missingRows
       << " missing row" << (res.missingRows == 1 ? "" : "s") << ", "
       << res.newRows << " new row" << (res.newRows == 1 ? "" : "s")
       << " (tolerance " << opts.tolerance * 100.0 << "%)\n";
    res.table = os.str();
    return res;
}

} // namespace sweep
} // namespace slinfer
