#include "sweep/sweep.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>

#include "common/log.hh"
#include "scenario/scenario.hh"
#include "sweep/pool.hh"
#include "sweep/store.hh"

namespace slinfer
{
namespace sweep
{

std::uint64_t
fnv1aHash(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
splitList(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string tok;
    while (std::getline(in, tok, sep)) {
        tok = trim(tok);
        if (!tok.empty())
            out.push_back(tok);
    }
    return out;
}

double
parseDouble(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size())
        fatal("override " + key + ": malformed number '" + value + "'");
    return v;
}

int
parsePositiveInt(const std::string &key, const std::string &value)
{
    double v = parseDouble(key, value);
    int i = static_cast<int>(v);
    if (i < 0 || static_cast<double>(i) != v)
        fatal("override " + key + ": expected a nonnegative integer, "
              "got '" + value + "'");
    return i;
}

/** Strict nonnegative integer: digits only, fully consumed. */
bool
parseSeedToken(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty() || tok[0] == '-' || tok[0] == '+')
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtoull(tok.c_str(), &end, 10);
    return errno != ERANGE && end == tok.c_str() + tok.size();
}

} // namespace

std::string
OverrideSet::canonical() const
{
    std::string out;
    for (const auto &[k, v] : settings) {
        if (!out.empty())
            out += ';';
        out += k + "=" + v;
    }
    return out;
}

std::vector<std::pair<std::string, std::string>>
parseOverrideSettings(const std::string &canonical)
{
    std::vector<std::pair<std::string, std::string>> out;
    std::string err;
    if (!tryParseOverrideSettings(canonical, out, &err))
        fatal(err);
    return out;
}

bool
tryParseOverrideSettings(
    const std::string &canonical,
    std::vector<std::pair<std::string, std::string>> &out,
    std::string *err)
{
    for (const std::string &kv : splitList(canonical, ';')) {
        std::size_t eq = kv.find('=');
        if (eq == std::string::npos) {
            if (err)
                *err = "override setting '" + kv + "' is not key=value";
            return false;
        }
        out.emplace_back(trim(kv.substr(0, eq)), trim(kv.substr(eq + 1)));
    }
    return true;
}

bool
parseSeedList(const std::string &text, std::vector<std::uint64_t> &out,
              std::string *err)
{
    auto fail = [err, &text](const std::string &what) {
        if (err)
            *err = what + " in seed list '" + text + "'";
        return false;
    };
    std::size_t dots = text.find("..");
    if (dots != std::string::npos) {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
        if (!parseSeedToken(trim(text.substr(0, dots)), lo) ||
            !parseSeedToken(trim(text.substr(dots + 2)), hi))
            return fail("malformed range endpoint");
        if (hi < lo || hi - lo >= 100000)
            return fail("bad range");
        for (std::uint64_t s = lo; s <= hi; ++s)
            out.push_back(s);
        return true;
    }
    bool any = false;
    for (const std::string &tok : splitList(text, ',')) {
        std::uint64_t v = 0;
        if (!parseSeedToken(tok, v))
            return fail("malformed seed '" + tok + "'");
        out.push_back(v);
        any = true;
    }
    return any || fail("no seeds");
}

bool
parseOverrideSpec(const std::string &spec, OverrideSet &out,
                  std::string *err)
{
    std::string settings = spec;
    std::size_t colon = spec.find(':');
    if (colon != std::string::npos) {
        out.name = trim(spec.substr(0, colon));
        settings = spec.substr(colon + 1);
    }
    return tryParseOverrideSettings(settings, out.settings, err);
}

bool
parseManifest(const std::string &text, Grid &out, std::string *err)
{
    auto fail = [err](const std::string &msg) {
        if (err)
            *err = msg;
        return false;
    };

    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return fail("manifest line " + std::to_string(lineno) +
                        ": expected 'key = value'");
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key == "scenarios") {
            for (const std::string &name : splitList(value, ','))
                out.scenarios.push_back(name);
        } else if (key == "systems") {
            for (const std::string &name : splitList(value, ',')) {
                SystemKind kind;
                if (!tryParseSystem(name, kind))
                    return fail("manifest line " + std::to_string(lineno) +
                                ": unknown system '" + name + "'");
                out.systems.push_back(kind);
            }
        } else if (key == "seeds") {
            std::string seed_err;
            if (!parseSeedList(value, out.seeds, &seed_err))
                return fail("manifest line " + std::to_string(lineno) +
                            ": " + seed_err);
        } else if (key == "override") {
            OverrideSet ov;
            std::string ov_err;
            if (!parseOverrideSpec(value, ov, &ov_err))
                return fail("manifest line " + std::to_string(lineno) +
                            ": " + ov_err);
            out.overrides.push_back(std::move(ov));
        } else {
            return fail("manifest line " + std::to_string(lineno) +
                        ": unknown key '" + key + "'");
        }
    }
    return true;
}

std::string
JobSpec::key() const
{
    std::ostringstream os;
    os.precision(17); // exact: a duration change must change the hash
    os << scenario << '|' << systemSlug(system) << '|' << seed << '|'
       << overrides.name << '|' << overrides.canonical() << '|'
       << duration;
    return os.str();
}

std::string
JobSpec::hash() const
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1aHash(key())));
    return buf;
}

std::vector<JobSpec>
expandGrid(const Grid &grid)
{
    if (grid.scenarios.empty())
        fatal("sweep grid: no scenarios");
    if (grid.systems.empty())
        fatal("sweep grid: no systems");
    if (grid.seeds.empty())
        fatal("sweep grid: no seeds");
    std::vector<OverrideSet> overrides = grid.overrides;
    if (overrides.empty())
        overrides.push_back(OverrideSet{});

    std::vector<JobSpec> jobs;
    jobs.reserve(grid.scenarios.size() * grid.systems.size() *
                 overrides.size() * grid.seeds.size());
    for (const std::string &name : grid.scenarios) {
        const scenario::Scenario *sc = scenario::byName(name);
        if (!sc)
            fatal("sweep grid: unknown scenario '" + name + "'");
        for (SystemKind system : grid.systems) {
            for (const OverrideSet &ov : overrides) {
                // Validate override keys once per set, before any job
                // runs, so a typo fails the sweep up front.
                applyOverrides(sc->toExperiment(system, sc->seed), ov);
                for (std::uint64_t seed : grid.seeds) {
                    JobSpec job;
                    job.scenario = name;
                    job.system = system;
                    job.seed = seed;
                    job.overrides = ov;
                    job.duration = sc->duration();
                    jobs.push_back(std::move(job));
                }
            }
        }
    }
    // Duplicate axes (a seed listed twice, a scenario named twice)
    // would run jobs redundantly and inflate replicate counts in the
    // summary; catch them up front.
    std::set<std::string> seen;
    for (const JobSpec &job : jobs) {
        if (!seen.insert(job.hash()).second)
            fatal("sweep grid: duplicate job '" + job.key() +
                  "' (an axis lists the same value twice)");
    }
    return jobs;
}

ExperimentConfig
applyOverrides(ExperimentConfig cfg, const OverrideSet &overrides)
{
    for (const auto &[key, value] : overrides.settings) {
        if (key == "cpu-nodes") {
            cfg.cluster.cpuNodes = parsePositiveInt(key, value);
        } else if (key == "gpu-nodes") {
            cfg.cluster.gpuNodes = parsePositiveInt(key, value);
        } else if (key == "keep-alive") {
            cfg.controller.keepAlive = parseDouble(key, value);
        } else if (key == "watermark") {
            cfg.controller.watermark = parseDouble(key, value);
        } else if (key == "overestimate") {
            cfg.controller.overestimate = parseDouble(key, value);
        } else if (key == "tpot-slo") {
            cfg.controller.slo.tpot = parseDouble(key, value);
        } else {
            fatal("unknown override key '" + key + "' (supported: "
                  "cpu-nodes, gpu-nodes, keep-alive, watermark, "
                  "overestimate, tpot-slo)");
        }
    }
    return cfg;
}

Report
runJob(const JobSpec &job, bool phaseProfile, bool attribution)
{
    const scenario::Scenario *sc = scenario::byName(job.scenario);
    if (!sc)
        fatal("sweep job: unknown scenario '" + job.scenario + "'");
    ExperimentConfig cfg = applyOverrides(
        sc->toExperiment(job.system, job.seed), job.overrides);
    cfg.obs.phaseProfile = phaseProfile;
    cfg.obs.anatomy = attribution;
    Report report = runExperiment(cfg);
    report.scenario = job.scenario;
    report.seed = job.seed;
    return report;
}

std::vector<Record>
runGrid(const Grid &grid, const RunOptions &opts, RunStats *stats)
{
    auto t0 = std::chrono::steady_clock::now();

    std::vector<JobSpec> jobs = expandGrid(grid);
    ResultStore store(opts.storePath);

    std::vector<Record> records(jobs.size());
    std::vector<std::size_t> pending;
    std::size_t done = 0;
    std::mutex progress_mutex;

    auto report_progress = [&](const JobSpec &job, bool cached) {
        // The store append happens before this, so a crash after a job
        // finishes never loses its record.
        std::lock_guard<std::mutex> lock(progress_mutex);
        ++done;
        if (opts.onProgress) {
            Progress p;
            p.done = done;
            p.total = jobs.size();
            p.job = &job;
            p.cached = cached;
            opts.onProgress(p);
        }
    };

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        records[i].job = jobs[i];
        const Report *cached = store.find(jobs[i].hash());
        if (cached) {
            records[i].report = *cached;
            report_progress(jobs[i], true);
        } else {
            pending.push_back(i);
        }
    }
    std::size_t cached_count = jobs.size() - pending.size();

    int workers = opts.jobs > 0 ? opts.jobs : defaultJobs();
    parallelFor(pending.size(), workers, [&](std::size_t k) {
        std::size_t i = pending[k];
        std::ostringstream tag;
        tag << "job " << i + 1 << "/" << jobs.size() << " "
            << jobs[i].hash();
        // Scope the tag over the whole job body (including the store
        // append and progress report) and restore the previous tag on
        // every exit path, so an idle worker's later messages never
        // carry a stale "job N/M" prefix.
        LogTagScope tag_scope(tag.str());
        Report report = runJob(jobs[i], opts.phaseProfile,
                               opts.attribution);
        store.append(jobs[i], report);
        records[i].report = std::move(report);
        report_progress(jobs[i], false);
    });

    // Rewrite the store in grid order: the file's bytes now depend only
    // on the grid and seeds, not on worker count or completion order.
    store.compact(records);

    if (stats) {
        stats->executed = pending.size();
        stats->cached = cached_count;
        stats->wallSeconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
    }
    return records;
}

} // namespace sweep
} // namespace slinfer
