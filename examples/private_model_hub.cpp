/**
 * @file
 * Scenario: a "one-stop hosting" provider (the paper's §III-B setting)
 * serves 64 customer models of mixed sizes on 4 CPU + 4 GPU nodes.
 * Compares exclusive allocation (ServerlessLLM-style) against SLINFER
 * under the same bursty multi-tenant trace, the decision a platform
 * operator actually faces.
 *
 * Composes a custom scenario::Scenario (rather than a catalog entry)
 * to show how operators describe their own fleets declaratively.
 */

#include <cstdio>

#include "common/table.hh"
#include "scenario/scenario.hh"

using namespace slinfer;

int
main()
{
    // A realistic popularity-weighted fleet: small models dominate
    // (87% of HuggingFace downloads are <= 8B).
    std::vector<ModelSpec> fleet;
    for (int i = 0; i < 64; ++i) {
        if (i % 8 < 4)
            fleet.push_back(llama32_3b());
        else if (i % 8 < 7)
            fleet.push_back(llama2_7b());
        else
            fleet.push_back(llama2_13b());
    }

    scenario::Scenario hub;
    hub.name = "private-model-hub";
    hub.summary = "64 mixed customer models on 4 CPU + 4 GPU nodes";
    AzureTraceConfig trace;
    trace.numModels = 64;
    trace.duration = 1800.0;
    hub.arrivals = scenario::makeAzure(trace);
    hub.models = fleet;
    hub.seed = 7;

    printBanner("Private model hub: 64 mixed models, 4 CPU + 4 GPU");
    Table t({"system", "SLO-met", "dropped", "CPU used", "GPU used",
             "p95 TTFT"});
    for (SystemKind sys : {SystemKind::Sllm, SystemKind::SllmC,
                           SystemKind::Slinfer}) {
        Report r = scenario::runScenario(hub, sys);
        t.addRow({r.system,
                  Table::num(static_cast<long long>(r.sloMet)) + "/" +
                      Table::num(static_cast<long long>(
                          r.totalRequests)),
                  Table::num(static_cast<long long>(r.dropped)),
                  Table::num(r.avgCpuNodesUsed, 1),
                  Table::num(r.avgGpuNodesUsed, 1),
                  Table::num(r.p95Ttft, 2)});
    }
    t.print();
    std::printf("\nTakeaway: elastic sharing turns the same hardware "
                "into substantially more served customers.\n");
    return 0;
}
