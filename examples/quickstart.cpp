/**
 * @file
 * Quickstart: deploy a handful of private LLMs on a small
 * heterogeneous cluster (1 AMX CPU node + 1 A100), drive them with a
 * serverless-style trace, and print the serving report.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "harness/experiment.hh"

using namespace slinfer;

int
main()
{
    // 1. Describe the cluster.
    ExperimentConfig cfg;
    cfg.cluster.cpuNodes = 1;  // Xeon-6462C (AMX) by default
    cfg.cluster.gpuNodes = 1;  // A100-80GB by default

    // 2. Deploy four private 7B models behind one endpoint each.
    cfg.models = replicateModel(llama2_7b(), 4);

    // 3. Generate a 5-minute serverless invocation trace and pick the
    //    request-length dataset.
    AzureTraceConfig trace;
    trace.numModels = 4;
    trace.duration = 300.0;
    trace.seed = 42;
    cfg.trace = generateAzureTrace(trace);
    cfg.duration = trace.duration;
    cfg.dataset = DatasetKind::AzureConv;

    // 4. Pick the serving system and run.
    cfg.system = SystemKind::Slinfer;
    Report report = runExperiment(cfg);

    std::printf("system:        %s\n", report.system.c_str());
    std::printf("requests:      %zu (completed %zu, dropped %zu)\n",
                report.totalRequests, report.completed, report.dropped);
    std::printf("SLO attainment: %.1f%%\n", report.sloRate * 100.0);
    std::printf("median TTFT:   %.2f s (p95 %.2f s)\n", report.p50Ttft,
                report.p95Ttft);
    std::printf("nodes used:    %.1f CPU + %.1f GPU\n",
                report.avgCpuNodesUsed, report.avgGpuNodesUsed);
    std::printf("decode speed:  %.0f tok/(CPU-node*s), %.0f "
                "tok/(GPU-node*s)\n",
                report.decodeSpeedCpu, report.decodeSpeedGpu);
    return 0;
}
