/**
 * @file
 * Quickstart: run the "quickstart" catalog scenario — a handful of
 * private LLMs on a small heterogeneous cluster (1 AMX CPU node +
 * 1 A100) driven by a serverless-style trace — and print the report.
 *
 * The same experiment is available from the command line:
 *   ./build/slinfer_run --scenario=quickstart
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "scenario/scenario.hh"

using namespace slinfer;

int
main()
{
    // Pick a declarative scenario from the catalog and a system.
    const scenario::Scenario *sc = scenario::byName("quickstart");
    if (!sc) {
        std::fprintf(stderr, "catalog is missing 'quickstart'\n");
        return 1;
    }
    Report report = scenario::runScenario(*sc, SystemKind::Slinfer);

    std::printf("scenario:      %s (%s)\n", sc->name.c_str(),
                sc->summary.c_str());
    std::printf("system:        %s\n", report.system.c_str());
    std::printf("requests:      %zu (completed %zu, dropped %zu)\n",
                report.totalRequests, report.completed, report.dropped);
    std::printf("SLO attainment: %.1f%%\n", report.sloRate * 100.0);
    std::printf("median TTFT:   %.2f s (p95 %.2f s)\n", report.p50Ttft,
                report.p95Ttft);
    std::printf("nodes used:    %.1f CPU + %.1f GPU\n",
                report.avgCpuNodesUsed, report.avgGpuNodesUsed);
    std::printf("decode speed:  %.0f tok/(CPU-node*s), %.0f "
                "tok/(GPU-node*s)\n",
                report.decodeSpeedCpu, report.decodeSpeedGpu);
    return 0;
}
