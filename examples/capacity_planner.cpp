/**
 * @file
 * Scenario: capacity planning. Given a target fleet (96 7B models) and
 * a target SLO attainment (95%), search cluster shapes (CPU vs GPU
 * node mixes) and report the cheapest configuration that meets the
 * target — the "how many CPUs equal one GPU?" question of Fig. 24,
 * turned into a planning tool.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"

using namespace slinfer;

int
main()
{
    const double kTargetSlo = 0.95;
    // Rough relative cost: an A100 node ~5x an AMX CPU node.
    const double kGpuCost = 5.0;
    const double kCpuCost = 1.0;

    AzureTraceConfig trace;
    trace.numModels = 96;
    trace.duration = 900.0;
    trace.seed = 11;

    printBanner("Capacity planner: 96 x 7B models, target 95% SLO");
    Table t({"CPUs", "GPUs", "cost", "SLO rate", "meets target"});
    double best_cost = 1e18;
    int best_c = -1, best_g = -1;
    for (int gpus = 1; gpus <= 6; ++gpus) {
        for (int cpus = 0; cpus <= 8; cpus += 2) {
            ExperimentConfig cfg;
            cfg.system = SystemKind::Slinfer;
            cfg.cluster.cpuNodes = cpus;
            cfg.cluster.gpuNodes = gpus;
            cfg.models = replicateModel(llama2_7b(), 96);
            cfg.trace = generateAzureTrace(trace);
            cfg.duration = trace.duration;
            Report r = runExperiment(cfg);
            double cost = cpus * kCpuCost + gpus * kGpuCost;
            bool ok = r.sloRate >= kTargetSlo;
            if (ok && cost < best_cost) {
                best_cost = cost;
                best_c = cpus;
                best_g = gpus;
            }
            t.addRow({Table::num(static_cast<long long>(cpus)),
                      Table::num(static_cast<long long>(gpus)),
                      Table::num(cost, 0), Table::pct(r.sloRate),
                      ok ? "yes" : "no"});
        }
    }
    t.print();
    if (best_c >= 0) {
        std::printf("\nCheapest qualifying cluster: %d CPU + %d GPU "
                    "nodes (cost %.0f)\n",
                    best_c, best_g, best_cost);
    } else {
        std::printf("\nNo evaluated cluster met the target; scale out "
                    "further.\n");
    }
    return 0;
}
