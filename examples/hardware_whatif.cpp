/**
 * @file
 * Scenario: hardware what-if (the paper's §X Discussion). How does
 * serving capacity change when the CPU fleet is upgraded from 3rd-gen
 * Xeon (no AMX) through 4th-gen AMX to the 96-core 6th generation —
 * and what does INT4 quantization buy for mid-size models?
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"

using namespace slinfer;

int
main()
{
    AzureTraceConfig trace;
    trace.numModels = 64;
    trace.duration = 900.0;
    trace.seed = 13;

    printBanner("What-if: CPU generations (64 x 7B, 4 CPU + 2 GPU)");
    Table t({"CPU fleet", "SLO rate", "CPU used", "GPU used"});
    struct Gen
    {
        const char *name;
        HardwareSpec spec;
    };
    Gen gens[] = {
        {"3rd-gen Xeon (no AMX)", xeon8369b()},
        {"4th-gen Xeon (AMX)", xeon6462c()},
        {"6th-gen Xeon (96c)", xeon6_96c()},
    };
    for (const Gen &g : gens) {
        ExperimentConfig cfg;
        cfg.system = SystemKind::Slinfer;
        cfg.cluster.cpuNodes = 4;
        cfg.cluster.gpuNodes = 2;
        cfg.cluster.cpuSpec = g.spec;
        cfg.models = replicateModel(llama2_7b(), 64);
        cfg.trace = generateAzureTrace(trace);
        cfg.duration = trace.duration;
        Report r = runExperiment(cfg);
        t.addRow({g.name, Table::pct(r.sloRate),
                  Table::num(r.avgCpuNodesUsed, 1),
                  Table::num(r.avgGpuNodesUsed, 1)});
    }
    t.print();
    std::printf("\nNon-AMX CPUs are excluded by SLINFER's profiling "
                "(prefill misses TTFT), so the 3rd-gen fleet "
                "contributes nothing.\n\n");

    printBanner("What-if: INT4 for 13B models (48 models, 4+4)");
    Table t2({"precision", "SLO rate", "GPU used"});
    for (bool int4 : {false, true}) {
        ExperimentConfig cfg;
        cfg.system = SystemKind::Slinfer;
        cfg.models = replicateModel(
            int4 ? quantized(llama2_13b(), 4) : llama2_13b(), 48);
        AzureTraceConfig tc = trace;
        tc.numModels = 48;
        cfg.trace = generateAzureTrace(tc);
        cfg.duration = tc.duration;
        Report r = runExperiment(cfg);
        t2.addRow({int4 ? "INT4" : "FP16", Table::pct(r.sloRate),
                   Table::num(r.avgGpuNodesUsed, 1)});
    }
    t2.print();
    return 0;
}
